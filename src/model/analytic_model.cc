#include "model/analytic_model.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace mmdb {
namespace {

// Probability that a k-record access set spans the color boundary when a
// fraction z of the database is black (records uniform, k << #segments).
double ConflictAt(double z, uint32_t k) {
  return 1.0 - std::pow(z, k) - std::pow(1.0 - z, k);
}

// Simpson integration over z in [0,1].
double Integrate(uint32_t k, bool odds_ratio) {
  constexpr int kSteps = 2048;  // even
  double sum = 0.0;
  for (int i = 0; i <= kSteps; ++i) {
    double z = static_cast<double>(i) / kSteps;
    double v = ConflictAt(z, k);
    double f = odds_ratio ? v / (1.0 - v) : v;
    double w = (i == 0 || i == kSteps) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    sum += w * f;
  }
  return sum / (3.0 * kSteps);
}

}  // namespace

bool ModelSupportsAlgorithm(Algorithm a) {
  switch (a) {
    case Algorithm::kFuzzyCopy:
    case Algorithm::kFastFuzzy:
    case Algorithm::kTwoColorFlush:
    case Algorithm::kTwoColorCopy:
    case Algorithm::kCouFlush:
    case Algorithm::kCouCopy:
    case Algorithm::kZigzag:
    case Algorithm::kPingPong:
      return true;
    case Algorithm::kHourglass:
      return false;
  }
  assert(false && "Algorithm value out of range");
  std::abort();
}

double AnalyticModel::MeanConflictProbability(uint32_t k) {
  return 1.0 - 2.0 / (k + 1.0);
}

double AnalyticModel::ExpectedRerunsPerActiveArrival(uint32_t k) {
  if (k < 2) return 0.0;  // one record can never span both colors
  return Integrate(k, /*odds_ratio=*/true);
}

double AnalyticModel::LogWordsPerTxn(const SystemParams& params) {
  // Representative ids so the varints have realistic widths.
  LogRecord update = LogRecord::Update(
      /*txn=*/1u << 30, /*record=*/params.db.num_records() / 2,
      std::string(params.db.record_bytes(), 'x'));
  update.lsn = 1u << 30;
  LogRecord commit = LogRecord::Commit(/*txn=*/1u << 30);
  commit.lsn = 1u << 30;
  double bytes =
      params.txn.updates_per_txn *
          (update.EncodedSize() + kLogFrameOverhead) +
      commit.EncodedSize() + kLogFrameOverhead;
  return bytes / kWordBytes;
}

double AnalyticModel::LogWordsPerTxnLogical(const SystemParams& params) {
  LogRecord delta = LogRecord::Delta(
      /*txn=*/1u << 30, /*record=*/params.db.num_records() / 2,
      /*field_offset=*/static_cast<uint32_t>(params.db.record_bytes() - 8),
      /*delta=*/-123456789);
  delta.lsn = 1u << 30;
  LogRecord commit = LogRecord::Commit(/*txn=*/1u << 30);
  commit.lsn = 1u << 30;
  double bytes = params.txn.updates_per_txn *
                     (delta.EncodedSize() + kLogFrameOverhead) +
                 commit.EncodedSize() + kLogFrameOverhead;
  return bytes / kWordBytes;
}

StatusOr<ModelOutputs> AnalyticModel::Evaluate() const {
  const SystemParams& p = inputs_.params;
  MMDB_RETURN_IF_ERROR(p.Validate());
  if (inputs_.algorithm == Algorithm::kFastFuzzy && !inputs_.stable_log_tail) {
    return FailedPreconditionError("FASTFUZZY requires a stable log tail");
  }
  if (inputs_.logical_logging && !SupportsLogicalLogging(inputs_.algorithm)) {
    return FailedPreconditionError(
        "logical logging requires a copy-on-update algorithm");
  }

  const OperationCosts& c = p.costs;
  const double n_seg = static_cast<double>(p.db.num_segments());
  const double seg_words = p.db.segment_words;
  const double lambda = p.txn.arrival_rate;
  const uint32_t k = p.txn.updates_per_txn;
  const double io_seg = p.disk.IoSeconds(p.db.segment_words);
  const double r = p.SegmentUpdateRate();

  // Dirty fraction w.r.t. the ping-pong copy being written: updates
  // accumulate over TWO intervals (successive checkpoints alternate
  // copies).
  auto dirty_fraction = [&](double interval) {
    if (inputs_.mode == CheckpointMode::kFull) return 1.0;
    return 1.0 - std::exp(-2.0 * r * interval);
  };
  // Disk-limited sweep time for a given interval's dirty set.
  auto active_seconds = [&](double interval) {
    return n_seg * dirty_fraction(interval) * io_seg /
           static_cast<double>(p.disk.num_disks);
  };

  // Minimum feasible interval: the fixed point D = T_active(D). Iterate
  // from the full-checkpoint sweep time; converges in a few rounds because
  // dirty_fraction is monotone and bounded.
  double d_min = n_seg * io_seg / p.disk.num_disks;
  for (int i = 0; i < 64; ++i) {
    double next = active_seconds(d_min);
    if (std::abs(next - d_min) < 1e-9 * std::max(1.0, d_min)) break;
    d_min = next;
  }
  // Below ~one segment of work the model degenerates; clamp.
  d_min = std::max(d_min, io_seg / p.disk.num_disks);

  ModelOutputs out;
  out.min_interval = d_min;
  out.interval = std::max(inputs_.checkpoint_interval, d_min);
  out.dirty_fraction = dirty_fraction(out.interval);
  out.segments_flushed = n_seg * out.dirty_fraction;
  out.active_seconds = active_seconds(out.interval);
  out.active_fraction = std::min(1.0, out.active_seconds / out.interval);
  out.txns_per_interval = lambda * out.interval;

  const bool lsn_costs = !inputs_.stable_log_tail;
  const double scan = (inputs_.mode == CheckpointMode::kPartial)
                          ? n_seg * static_cast<double>(c.dirty_check)
                          : 0.0;
  const double copy_cost = 2.0 * c.alloc + c.move_per_word * seg_words;
  const double n_f = out.segments_flushed;

  double sync_per_txn = 0.0;
  double async_per_ckpt = scan;
  double abort_log_words_per_txn = 0.0;

  switch (inputs_.algorithm) {
    case Algorithm::kFuzzyCopy:
      sync_per_txn = lsn_costs ? k * static_cast<double>(c.lsn) : 0.0;
      async_per_ckpt +=
          n_f * (copy_cost + (lsn_costs ? c.lsn : 0.0) + c.io);
      break;

    case Algorithm::kFastFuzzy:
      async_per_ckpt += n_f * static_cast<double>(c.io);
      break;

    case Algorithm::kTwoColorFlush:
    case Algorithm::kTwoColorCopy: {
      out.conflict_probability =
          out.active_fraction * MeanConflictProbability(k);
      // Single-restart model, as in the paper: a conflicting transaction
      // is aborted once and rerun after the sweep passes (the engine's
      // workload driver implements exactly this retry policy), so the
      // expected rerun count equals the conflict probability. The
      // geometric retry-against-a-frozen-boundary alternative is exposed
      // as ExpectedRerunsPerActiveArrival for comparison.
      out.expected_reruns = out.conflict_probability;
      sync_per_txn = (lsn_costs ? k * static_cast<double>(c.lsn) : 0.0) +
                     out.expected_reruns *
                         (static_cast<double>(p.txn.instructions) +
                          (lsn_costs ? k * static_cast<double>(c.lsn) : 0.0));
      double per_seg = 2.0 * c.lock + (lsn_costs ? c.lsn : 0.0) + c.io;
      if (inputs_.algorithm == Algorithm::kTwoColorCopy) {
        per_seg += copy_cost;
      }
      async_per_ckpt += n_f * per_seg;
      // Aborted attempts log only an abort record in this engine; still,
      // they lengthen the replayed log slightly (the paper's observation).
      LogRecord abort = LogRecord::Abort(1u << 30);
      abort.lsn = 1u << 30;
      abort_log_words_per_txn =
          out.expected_reruns *
          static_cast<double>(abort.EncodedSize() + kLogFrameOverhead) /
          kWordBytes;
      break;
    }

    case Algorithm::kCouFlush:
    case Algorithm::kCouCopy: {
      // Transaction-side old-image copies: the sweep reaches the segment
      // at position x after x*T_active seconds; it is copied iff updated
      // before that. E[#] = sum over x of 1-exp(-r x T) =
      // N(1 - (1-e^-a)/a), a = r*T_active.
      double a = r * out.active_seconds;
      double cou =
          a < 1e-9 ? 0.0 : n_seg * (1.0 - (1.0 - std::exp(-a)) / a);
      out.cou_copies = cou;
      // Figure 3.2 runs on every update: a segment lock/unlock pair plus
      // timestamp maintenance (charged like C_lsn).
      sync_per_txn = k * (2.0 * static_cast<double>(c.lock) +
                          static_cast<double>(c.lsn)) +
                     cou * (c.alloc + c.move_per_word * seg_words) /
                         out.txns_per_interval;
      if (inputs_.algorithm == Algorithm::kCouCopy) {
        async_per_ckpt += (n_f - cou) * (2.0 * c.lock + copy_cost + c.io) +
                          cou * (2.0 * c.lock + c.io + c.alloc);
      } else {
        async_per_ckpt += n_f * (2.0 * c.lock + c.io) + cou * c.alloc;
      }
      break;
    }

    case Algorithm::kZigzag: {
      // Two bit operations per installed update (point MW[r] away from the
      // sweep's copy, flag the record), priced like a dirty-bit touch.
      sync_per_txn = k * 2.0 * static_cast<double>(c.dirty_check);
      // Begin's bulk MR := MW bit-array copy (one bit per record, moved a
      // word at a time), then a per-segment gather: one bit consult per
      // record plus a staging copy, then the flush.
      const double bit_words =
          static_cast<double>(p.db.num_records()) / 64.0;
      async_per_ckpt +=
          c.move_per_word * bit_words +
          n_f * (static_cast<double>(p.db.records_per_segment()) *
                     static_cast<double>(c.dirty_check) +
                 copy_cost + c.io);
      break;
    }

    case Algorithm::kPingPong: {
      // The double write on every update is the entire synchronous price;
      // the quiescent shadow then flushes directly (no gather, no locks).
      sync_per_txn =
          k * c.move_per_word * static_cast<double>(p.db.record_words);
      async_per_ckpt += n_f * static_cast<double>(c.io);
      break;
    }

    case Algorithm::kHourglass:
      // See ModelSupportsAlgorithm: no closed form for the first-touch
      // record-copy footprint. Callers treat this status as "measured
      // only", not as a failure.
      return NotSupportedError(
          "HOURGLASS is model-exempt: no closed form for its first-touch "
          "record-copy footprint; use measured results");
  }

  out.sync_per_txn = sync_per_txn;
  out.async_per_txn = async_per_ckpt / out.txns_per_interval;
  out.overhead_per_txn = out.sync_per_txn + out.async_per_txn;

  // --- recovery time -----------------------------------------------------
  // Reload the full database image, then read the log from the last
  // complete checkpoint's begin marker: expected distance 1.5 intervals
  // plus the active sweep (crash uniform within the cycle).
  out.recovery_backup_seconds = n_seg * io_seg / p.disk.num_disks;
  out.log_words_per_txn =
      (inputs_.logical_logging ? LogWordsPerTxnLogical(p)
                               : LogWordsPerTxn(p)) +
      abort_log_words_per_txn;
  double window = out.active_seconds + 0.5 * out.interval + out.interval;
  // (from completion of ckpt N back to begin of ckpt N: T_active; plus the
  //  expected half-interval of the current cycle; plus one full interval
  //  because the in-progress checkpoint is unusable: on average 1.5D +
  //  T_active/... — conservatively T_active + 1.5D is an upper mean; the
  //  crash-point average works out to T_active + D/2 after the last
  //  completion plus the D separating the two begin markers.)
  out.log_words_replayed = window * lambda * out.log_words_per_txn;
  constexpr double kChunkWords = 64.0 * 1024.0;
  double chunks = out.log_words_replayed / kChunkWords;
  out.recovery_log_seconds = chunks * p.disk.IoSeconds(kChunkWords) /
                             p.disk.num_log_disks;
  out.recovery_seconds =
      out.recovery_backup_seconds + out.recovery_log_seconds;
  return out;
}

std::string ModelOutputs::ToString() const {
  return StringPrintf(
      "D=%.2fs (min %.2fs, active %.2fs f=%.2f) dirty=%.3f flushed=%.0f | "
      "overhead/txn=%.1f (sync %.1f, async %.1f) reruns=%.2f cou=%.0f | "
      "recovery=%.2fs (backup %.2fs + log %.2fs, %.0f words)",
      interval, min_interval, active_seconds, active_fraction,
      dirty_fraction, segments_flushed, overhead_per_txn, sync_per_txn,
      async_per_txn, expected_reruns, cou_copies, recovery_seconds,
      recovery_backup_seconds, recovery_log_seconds, log_words_replayed);
}

}  // namespace mmdb
