#ifndef MMDB_MODEL_ANALYTIC_MODEL_H_
#define MMDB_MODEL_ANALYTIC_MODEL_H_

#include <string>

#include "checkpoint/checkpointer.h"
#include "sim/cost_model.h"
#include "util/status.h"
#include "util/statusor.h"

namespace mmdb {

// Inputs to the analytic performance model of Section 4 (reconstructed; the
// original derivations lived in the [Sale87a] technical report). See
// DESIGN.md section 4 for the full derivation and EXPERIMENTS.md for the
// validation against the executable engine.
struct ModelInputs {
  SystemParams params;
  Algorithm algorithm = Algorithm::kFuzzyCopy;
  CheckpointMode mode = CheckpointMode::kPartial;
  // Desired checkpoint duration (begin-to-begin), seconds; values below
  // the feasible minimum are raised to it. 0 = as fast as possible.
  double checkpoint_interval = 0.0;
  // Stable RAM holds the log tail: LSN maintenance costs vanish
  // (Figure 4e). Required for FASTFUZZY.
  bool stable_log_tail = false;

  // Logical (delta) logging instead of after-images: shrinks the log by an
  // order of magnitude and with it the recovery-time log-read term — the
  // [Sale87a] interaction the paper alludes to ("more expensive
  // checkpointing algorithms may prove beneficial because they can be used
  // in conjunction with less costly logging"). Only valid for the COU
  // algorithms (see SupportsLogicalLogging).
  bool logical_logging = false;
};

// Model outputs. The two headline metrics are overhead_per_txn
// (instructions of checkpoint-related work per transaction, synchronous +
// amortized asynchronous — Figures 4a and 4c-4e) and recovery_seconds
// (expected time to rebuild the primary database after a failure —
// Figures 4a-4b).
struct ModelOutputs {
  // Checkpoint geometry.
  double min_interval = 0.0;      // smallest feasible D, seconds
  double interval = 0.0;          // D actually used
  double active_seconds = 0.0;    // T_active: time the sweep spends writing
  double active_fraction = 0.0;   // f = T_active / D
  double dirty_fraction = 0.0;    // P(segment dirty w.r.t. the copy written)
  double segments_flushed = 0.0;  // N_f per checkpoint
  double txns_per_interval = 0.0;

  // Two-color behaviour.
  double conflict_probability = 0.0;  // per fresh attempt, averaged
  double expected_reruns = 0.0;       // extra attempts per transaction

  // COU behaviour.
  double cou_copies = 0.0;  // transaction-side old-image copies/checkpoint

  // Costs (instructions per committed transaction).
  double sync_per_txn = 0.0;
  double async_per_txn = 0.0;
  double overhead_per_txn = 0.0;

  // Recovery time decomposition (seconds).
  double recovery_backup_seconds = 0.0;
  double recovery_log_seconds = 0.0;
  double recovery_seconds = 0.0;

  // Log volume.
  double log_words_per_txn = 0.0;
  double log_words_replayed = 0.0;  // expected at recovery

  std::string ToString() const;
};

// True when AnalyticModel::Evaluate has a closed form for `a`. HOURGLASS
// is model-exempt: its synchronous cost scales with the post-marker update
// *footprint* (distinct records touched while their segment is unswept),
// a quantity with no closed form under this workload model. Measured-only
// sidecar entries carry its numbers instead (has_validation = false).
bool ModelSupportsAlgorithm(Algorithm a);

// Closed-form evaluation; runs in microseconds, so benches can sweep
// parameters densely at the paper's full 256 Mword scale.
class AnalyticModel {
 public:
  explicit AnalyticModel(const ModelInputs& inputs) : inputs_(inputs) {}

  StatusOr<ModelOutputs> Evaluate() const;

  // E_z[v(z)/(1-v(z))] for k uniform records, where v(z)=1-z^k-(1-z)^k is
  // the probability a fresh transaction spans the color boundary at black
  // fraction z: the expected number of reruns per transaction arriving
  // during an active two-color sweep (retries redraw their record set).
  static double ExpectedRerunsPerActiveArrival(uint32_t k);

  // Mean conflict probability E_z[v(z)] = 1 - 2/(k+1).
  static double MeanConflictProbability(uint32_t k);

  // Encoded log words per transaction for the given parameters (exact
  // record-format sizes: k update frames + one commit frame).
  static double LogWordsPerTxn(const SystemParams& params);

  // Same, with kDelta records instead of after-images (logical logging).
  static double LogWordsPerTxnLogical(const SystemParams& params);

 private:
  ModelInputs inputs_;
};

}  // namespace mmdb

#endif  // MMDB_MODEL_ANALYTIC_MODEL_H_
