#include "model/model_oracle.h"

#include <cmath>
#include <limits>

namespace mmdb {

ResidualEntry MakeResidual(double predicted, double measured) {
  ResidualEntry entry;
  entry.predicted = predicted;
  entry.measured = measured;
  if (predicted != 0.0) {
    entry.residual = (measured - predicted) / predicted;
  } else if (measured == 0.0) {
    entry.residual = 0.0;
  } else {
    entry.residual = std::numeric_limits<double>::infinity();
  }
  return entry;
}

void ResidualEntry::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("predicted");
  writer->Double(predicted);
  writer->Key("measured");
  writer->Double(measured);
  writer->Key("residual");
  writer->Double(residual);  // non-finite -> null
  writer->EndObject();
}

void ModelValidation::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("overhead_per_txn");
  overhead_per_txn.ToJson(writer);
  writer->Key("sync_per_txn");
  sync_per_txn.ToJson(writer);
  writer->Key("async_per_txn");
  async_per_txn.ToJson(writer);
  writer->Key("recovery_seconds");
  recovery_seconds.ToJson(writer);
  writer->EndObject();
}

std::string ModelValidation::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

StatusOr<ModelValidation> CompareToModel(const ModelInputs& inputs,
                                         const MeasuredMetrics& measured) {
  AnalyticModel model(inputs);
  MMDB_ASSIGN_OR_RETURN(ModelOutputs predicted, model.Evaluate());
  ModelValidation v;
  v.overhead_per_txn =
      MakeResidual(predicted.overhead_per_txn, measured.overhead_per_txn);
  v.sync_per_txn = MakeResidual(predicted.sync_per_txn, measured.sync_per_txn);
  v.async_per_txn =
      MakeResidual(predicted.async_per_txn, measured.async_per_txn);
  v.recovery_seconds =
      MakeResidual(predicted.recovery_seconds, measured.recovery_seconds);
  return v;
}

namespace {

void Accumulate(const ResidualEntry& entry, double* sum, double* max) {
  double r = std::isfinite(entry.residual) ? std::fabs(entry.residual)
                                           : std::fabs(entry.measured);
  *sum += r;
  if (r > *max) *max = r;
}

void EmitSummaryMetric(JsonWriter* w, const char* name, double mean,
                       double max) {
  w->Key(name);
  w->BeginObject();
  w->Key("mean_abs_residual");
  w->Double(mean);
  w->Key("max_abs_residual");
  w->Double(max);
  w->EndObject();
}

}  // namespace

void ResidualSummary::Add(const ModelValidation& validation) {
  ++points_;
  Accumulate(validation.overhead_per_txn, &overhead_abs_sum_,
             &overhead_abs_max_);
  Accumulate(validation.sync_per_txn, &sync_abs_sum_, &sync_abs_max_);
  Accumulate(validation.async_per_txn, &async_abs_sum_, &async_abs_max_);
  Accumulate(validation.recovery_seconds, &recovery_abs_sum_,
             &recovery_abs_max_);
}

void ResidualSummary::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("points");
  writer->Uint(points_);
  EmitSummaryMetric(writer, "overhead_per_txn", Mean(overhead_abs_sum_),
                    overhead_abs_max_);
  EmitSummaryMetric(writer, "sync_per_txn", Mean(sync_abs_sum_),
                    sync_abs_max_);
  EmitSummaryMetric(writer, "async_per_txn", Mean(async_abs_sum_),
                    async_abs_max_);
  EmitSummaryMetric(writer, "recovery_seconds", Mean(recovery_abs_sum_),
                    recovery_abs_max_);
  writer->EndObject();
}

std::string ResidualSummary::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

}  // namespace mmdb
