#ifndef MMDB_MODEL_MODEL_ORACLE_H_
#define MMDB_MODEL_MODEL_ORACLE_H_

#include <cstddef>
#include <string>

#include "model/analytic_model.h"
#include "util/json.h"
#include "util/statusor.h"

namespace mmdb {

// Model-oracle validation: every measured bench point is also evaluated
// through the Section 4 analytic model at the *same* SystemParams, and the
// relative residual between prediction and measurement is recorded beside
// the measurement. The paper's claims are analytic while our engine is
// executable; this layer is what keeps the two continuously checked
// against each other (DESIGN.md §13).

// One predicted/measured pair. `residual` is the signed relative residual
// (measured - predicted) / predicted; +infinity (emitted as JSON null)
// when the model predicts exactly zero but the engine measured otherwise.
struct ResidualEntry {
  double predicted = 0.0;
  double measured = 0.0;
  double residual = 0.0;

  void ToJson(JsonWriter* writer) const;
};

ResidualEntry MakeResidual(double predicted, double measured);

// The per-point validation block written into bench sidecars as the
// "validation" member: the model's headline outputs against the engine's
// measurements for the same parameters.
struct ModelValidation {
  ResidualEntry overhead_per_txn;  // instructions/transaction
  ResidualEntry sync_per_txn;
  ResidualEntry async_per_txn;
  ResidualEntry recovery_seconds;  // crash-to-rebuilt, seconds

  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

// Engine-side measurements the oracle compares against (plain doubles so
// the model library needs no dependency on the engine's result structs).
struct MeasuredMetrics {
  double overhead_per_txn = 0.0;
  double sync_per_txn = 0.0;
  double async_per_txn = 0.0;
  double recovery_seconds = 0.0;
};

// Evaluates the analytic model for `inputs` and pairs each headline output
// with its measurement. Fails only if the model itself rejects the inputs
// (which Engine::Open's validation should have prevented).
[[nodiscard]] StatusOr<ModelValidation> CompareToModel(
    const ModelInputs& inputs, const MeasuredMetrics& measured);

// Accumulates per-point validations into the per-figure summary written as
// the sidecar's "validation_summary" member: mean and max absolute
// relative residual per metric, so one number per figure says how far the
// engine has drifted from the paper's formulas.
class ResidualSummary {
 public:
  void Add(const ModelValidation& validation);

  std::size_t points() const { return points_; }
  double mean_abs_overhead_residual() const {
    return Mean(overhead_abs_sum_);
  }
  double max_abs_overhead_residual() const { return overhead_abs_max_; }
  double mean_abs_recovery_residual() const {
    return Mean(recovery_abs_sum_);
  }
  double max_abs_recovery_residual() const { return recovery_abs_max_; }

  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;

 private:
  double Mean(double sum) const {
    return points_ == 0 ? 0.0 : sum / static_cast<double>(points_);
  }

  std::size_t points_ = 0;
  double overhead_abs_sum_ = 0.0, overhead_abs_max_ = 0.0;
  double sync_abs_sum_ = 0.0, sync_abs_max_ = 0.0;
  double async_abs_sum_ = 0.0, async_abs_max_ = 0.0;
  double recovery_abs_sum_ = 0.0, recovery_abs_max_ = 0.0;
};

}  // namespace mmdb

#endif  // MMDB_MODEL_MODEL_ORACLE_H_
