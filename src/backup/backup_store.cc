#include "backup/backup_store.h"

#include <algorithm>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace mmdb {
namespace {

constexpr uint32_t kMetaMagic = 0x4d4d4d43;  // "MMMC"
constexpr uint64_t kHeaderBytes = 64;

}  // namespace

void CheckpointMeta::EncodeTo(std::string* dst) const {
  std::string body;
  PutFixed32(&body, kMetaMagic);
  PutFixed64(&body, checkpoint_id);
  PutFixed32(&body, copy);
  PutFixed64(&body, log_offset);
  PutFixed64(&body, begin_lsn);
  PutFixed64(&body, tau);
  uint32_t crc = crc32c::Mask(crc32c::Value(body));
  dst->append(body);
  PutFixed32(dst, crc);
}

Status CheckpointMeta::DecodeFrom(std::string_view data, CheckpointMeta* out) {
  constexpr size_t kBodyBytes = 4 + 8 + 4 + 8 + 8 + 8;
  if (data.size() < kBodyBytes + 4) {
    return CorruptionError("checkpoint meta too short");
  }
  std::string_view body = data.substr(0, kBodyBytes);
  std::string_view rest = data.substr(kBodyBytes);
  uint32_t stored_crc;
  if (!GetFixed32(&rest, &stored_crc)) {
    return CorruptionError("checkpoint meta missing crc");
  }
  if (crc32c::Unmask(stored_crc) != crc32c::Value(body)) {
    return CorruptionError("checkpoint meta crc mismatch");
  }
  uint32_t magic;
  GetFixed32(&body, &magic);
  if (magic != kMetaMagic) return CorruptionError("checkpoint meta bad magic");
  GetFixed64(&body, &out->checkpoint_id);
  GetFixed32(&body, &out->copy);
  GetFixed64(&body, &out->log_offset);
  GetFixed64(&body, &out->begin_lsn);
  GetFixed64(&body, &out->tau);
  return Status::OK();
}

BackupStore::BackupStore(Env* env, std::string dir, const SystemParams& params,
                         DiskArrayModel* disks)
    : env_(env), dir_(std::move(dir)), params_(params), disks_(disks) {}

std::string BackupStore::CopyPath(uint32_t copy) const {
  return dir_ + "/backup_" + std::to_string(copy) + ".db";
}

std::string BackupStore::MetaPath() const { return dir_ + "/CHECKPOINT"; }

uint64_t BackupStore::SlotOffsetFor(const DatabaseParams& db,
                                    SegmentId segment) {
  return kHeaderBytes + db.num_segments() * 4 + segment * db.segment_bytes();
}

uint64_t BackupStore::CrcOffsetFor(const DatabaseParams& /*db*/,
                                   SegmentId segment) {
  // The CRC table layout happens not to depend on the geometry, but the
  // parameter keeps the two offset helpers symmetric.
  return kHeaderBytes + segment * 4;
}

uint64_t BackupStore::SlotOffset(SegmentId segment) const {
  return SlotOffsetFor(params_.db, segment);
}

uint64_t BackupStore::CrcOffset(SegmentId segment) const {
  return CrcOffsetFor(params_.db, segment);
}

StatusOr<DatabaseParams> BackupStore::ReadGeometry(
    Env* env, const std::string& copy_path) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        env->NewRandomAccessFile(copy_path));
  std::string header;
  MMDB_RETURN_IF_ERROR(file->Read(0, 24, &header));
  std::string_view in = header;
  uint32_t magic, copy_idx;
  DatabaseParams db;
  if (!GetFixed32(&in, &magic) || magic != kMetaMagic ||
      !GetFixed32(&in, &copy_idx) || !GetFixed64(&in, &db.db_words) ||
      !GetFixed32(&in, &db.segment_words) ||
      !GetFixed32(&in, &db.record_words)) {
    return CorruptionError("backup copy header unreadable");
  }
  return db;
}

Status BackupStore::Open() {
  MMDB_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir_));
  const uint64_t total =
      kHeaderBytes + params_.db.num_segments() * 4 +
      params_.db.num_segments() * params_.db.segment_bytes();
  for (uint32_t c = 0; c < 2; ++c) {
    const bool fresh = !env_->FileExists(CopyPath(c));
    MMDB_ASSIGN_OR_RETURN(copies_[c], env_->NewRandomWriteFile(CopyPath(c)));
    MMDB_RETURN_IF_ERROR(copies_[c]->Truncate(total));
    if (!fresh) {
      // Reopening existing copies: the stored geometry must match ours, or
      // every slot offset would be misinterpreted.
      std::string header;
      MMDB_RETURN_IF_ERROR(copies_[c]->Read(0, 24, &header));
      std::string_view in = header;
      uint32_t magic, copy_idx, seg_words, rec_words;
      uint64_t db_words;
      if (!GetFixed32(&in, &magic) || magic != kMetaMagic ||
          !GetFixed32(&in, &copy_idx) || !GetFixed64(&in, &db_words) ||
          !GetFixed32(&in, &seg_words) || !GetFixed32(&in, &rec_words)) {
        return CorruptionError("backup copy header unreadable");
      }
      if (copy_idx != c) {
        return CorruptionError("backup copy index mismatch");
      }
      if (db_words != params_.db.db_words ||
          seg_words != params_.db.segment_words ||
          rec_words != params_.db.record_words) {
        return InvalidArgumentError(StringPrintf(
            "backup geometry mismatch: file has db=%llu seg=%u rec=%u",
            static_cast<unsigned long long>(db_words), seg_words,
            rec_words));
      }
      continue;  // keep existing images and checksums
    }
    // Header: magic + geometry, written once (idempotent).
    std::string header;
    PutFixed32(&header, kMetaMagic);
    PutFixed32(&header, c);
    PutFixed64(&header, params_.db.db_words);
    PutFixed32(&header, params_.db.segment_words);
    PutFixed32(&header, params_.db.record_words);
    MMDB_RETURN_IF_ERROR(copies_[c]->WriteAt(0, header));
    // Checksum slots must match the zero-filled segment extents so a
    // freshly-created copy reads back cleanly (a partial checkpoint may
    // legitimately skip most segments).
    std::string zero_crcs;
    const std::string zero_segment(params_.db.segment_bytes(), '\0');
    uint32_t crc = crc32c::Mask(crc32c::Value(zero_segment));
    for (uint64_t s = 0; s < params_.db.num_segments(); ++s) {
      PutFixed32(&zero_crcs, crc);
    }
    MMDB_RETURN_IF_ERROR(copies_[c]->WriteAt(CrcOffset(0), zero_crcs));
  }
  return Status::OK();
}

StatusOr<double> BackupStore::WriteSegment(uint32_t copy, SegmentId segment,
                                           std::string_view data, double now) {
  if (copy > 1) return InvalidArgumentError("copy must be 0 or 1");
  if (segment >= params_.db.num_segments()) {
    return InvalidArgumentError("segment out of range");
  }
  if (data.size() != params_.db.segment_bytes()) {
    return InvalidArgumentError("segment image has wrong size");
  }
  // Prune in-flight entries that have landed by now.
  std::erase_if(in_flight_,
                [now](const InFlight& w) { return w.done_time <= now; });

  MMDB_RETURN_IF_ERROR(copies_[copy]->WriteAt(SlotOffset(segment), data));
  std::string crc;
  PutFixed32(&crc, crc32c::Mask(crc32c::Value(data)));
  MMDB_RETURN_IF_ERROR(copies_[copy]->WriteAt(CrcOffset(segment), crc));

  double done = disks_->Submit(now, params_.db.segment_words);
  in_flight_.push_back(InFlight{copy, segment, done});
  ++segments_written_;
  if (m_segment_writes_ != nullptr) {
    m_segment_writes_->Increment();
    m_segment_write_bytes_->Increment(data.size());
    m_write_service_seconds_->Record(done - now);
  }
  return done;
}

void BackupStore::set_obs(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  m_segment_writes_ = registry->counter("backup.segment_writes");
  m_segment_write_bytes_ = registry->counter("backup.segment_write_bytes");
  m_segment_reads_ = registry->counter("backup.segment_reads");
  m_read_errors_ = registry->counter("backup.read_errors");
  m_meta_commits_ = registry->counter("backup.meta_commits");
  m_write_service_seconds_ = registry->timer("backup.write_service_seconds");
}

Status BackupStore::ReadSegment(uint32_t copy, SegmentId segment,
                                std::string* out) const {
  if (copy > 1) return InvalidArgumentError("copy must be 0 or 1");
  if (segment >= params_.db.num_segments()) {
    return InvalidArgumentError("segment out of range");
  }
  if (m_segment_reads_ != nullptr) m_segment_reads_->Increment();
  MMDB_RETURN_IF_ERROR(copies_[copy]->Read(
      SlotOffset(segment), params_.db.segment_bytes(), out));
  if (out->size() != params_.db.segment_bytes()) {
    return CorruptionError("short segment read from backup");
  }
  std::string crc_bytes;
  MMDB_RETURN_IF_ERROR(copies_[copy]->Read(CrcOffset(segment), 4, &crc_bytes));
  if (crc_bytes.size() != 4) return CorruptionError("short crc read");
  uint32_t stored = crc32c::Unmask(DecodeFixed32(crc_bytes.data()));
  if (stored != crc32c::Value(*out)) {
    if (m_read_errors_ != nullptr) m_read_errors_->Increment();
    return CorruptionError(StringPrintf(
        "backup copy %u segment %llu checksum mismatch", copy,
        static_cast<unsigned long long>(segment)));
  }
  return Status::OK();
}

Status BackupStore::CommitCheckpoint(const CheckpointMeta& meta) {
  if (m_meta_commits_ != nullptr) m_meta_commits_->Increment();
  std::string encoded;
  meta.EncodeTo(&encoded);
  const std::string tmp = MetaPath() + ".tmp";
  MMDB_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, encoded, /*sync=*/true));
  return env_->RenameFile(tmp, MetaPath());
}

StatusOr<CheckpointMeta> BackupStore::ReadMeta() const {
  if (!env_->FileExists(MetaPath())) {
    return NotFoundError("no completed checkpoint");
  }
  std::string contents;
  MMDB_RETURN_IF_ERROR(env_->ReadFileToString(MetaPath(), &contents));
  CheckpointMeta meta;
  MMDB_RETURN_IF_ERROR(CheckpointMeta::DecodeFrom(contents, &meta));
  return meta;
}

Status BackupStore::Crash(double now) {
  // Writes still in flight tear: scribble the slot so the checksum fails.
  for (const InFlight& w : in_flight_) {
    if (w.done_time > now) {
      std::string garbage(params_.db.segment_bytes(), '\xde');
      MMDB_RETURN_IF_ERROR(
          copies_[w.copy]->WriteAt(SlotOffset(w.segment), garbage));
      std::string bad_crc;
      PutFixed32(&bad_crc, 0xdeadbeef);
      MMDB_RETURN_IF_ERROR(
          copies_[w.copy]->WriteAt(CrcOffset(w.segment), bad_crc));
    }
  }
  in_flight_.clear();
  return Status::OK();
}

}  // namespace mmdb
