#ifndef MMDB_BACKUP_BACKUP_STORE_H_
#define MMDB_BACKUP_BACKUP_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "obs/metrics_registry.h"
#include "sim/cost_model.h"
#include "sim/disk_model.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/types.h"

namespace mmdb {

// Metadata naming the last *complete* checkpoint. Persisted atomically
// (write-temp + rename) after the end-checkpoint log record is durable, so
// at every instant recovery can find a complete backup — the ping-pong
// guarantee of Section 2.6.
struct CheckpointMeta {
  CheckpointId checkpoint_id = 0;
  uint32_t copy = 0;              // which ping-pong copy this checkpoint wrote
  uint64_t log_offset = 0;        // byte offset of the begin-checkpoint frame
  Lsn begin_lsn = kInvalidLsn;    // LSN of the begin-checkpoint record
  Timestamp tau = 0;              // tau(CH) for COU checkpoints

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view data, CheckpointMeta* out);

  friend bool operator==(const CheckpointMeta&, const CheckpointMeta&) =
      default;
};

// The secondary (disk-resident) database: two complete copies of the
// database image, updated alternately by successive checkpoints. Each
// segment slot carries a CRC so that torn writes from a crash mid-checkpoint
// are detectable.
//
// Timing: segment reads/writes are routed through the shared backup-disk
// array model (N_bdisks devices); the returned completion times drive the
// checkpointer's pacing. The bytes themselves move through Env immediately;
// Crash(now) corrupts the slots of writes whose modeled completion had not
// been reached, which is exactly the state a real machine could expose.
class BackupStore {
 public:
  // `disks` must outlive the store and is shared with recovery.
  BackupStore(Env* env, std::string dir, const SystemParams& params,
              DiskArrayModel* disks);

  BackupStore(const BackupStore&) = delete;
  BackupStore& operator=(const BackupStore&) = delete;

  // Creates/opens both copy files, preallocating full database extents.
  Status Open();

  // Which copy checkpoint `id` must write (checkpoints alternate).
  static uint32_t CopyFor(CheckpointId id) { return id % 2; }

  // Schedules the write of one segment image into `copy` at time `now`;
  // returns the modeled completion time. `data` must be segment_bytes long.
  StatusOr<double> WriteSegment(uint32_t copy, SegmentId segment,
                                std::string_view data, double now);

  // Reads and checksum-verifies one segment image.
  Status ReadSegment(uint32_t copy, SegmentId segment, std::string* out) const;

  // Atomically publishes `meta` as the latest complete checkpoint.
  Status CommitCheckpoint(const CheckpointMeta& meta);

  // Latest published metadata; NOT_FOUND before the first checkpoint
  // completes.
  StatusOr<CheckpointMeta> ReadMeta() const;

  // Simulates a crash at `now`: in-flight segment writes tear (their slots
  // are scribbled and fail checksum verification afterwards).
  Status Crash(double now);

  uint64_t segments_written() const { return segments_written_; }

  // Optional metrics sink (may be null).
  void set_obs(MetricsRegistry* registry);

  // The shared backup-disk array model (for pacing and recovery timing).
  DiskArrayModel* disks() const { return disks_; }

  // --- file-format introspection (used by the inspection tools) ----------
  // Reads the geometry stored in a copy file's header.
  static StatusOr<DatabaseParams> ReadGeometry(Env* env,
                                               const std::string& copy_path);
  // Byte offsets within a copy file for the given geometry.
  static uint64_t SlotOffsetFor(const DatabaseParams& db, SegmentId segment);
  static uint64_t CrcOffsetFor(const DatabaseParams& db, SegmentId segment);

  const std::string& dir() const { return dir_; }
  std::string CopyPath(uint32_t copy) const;
  std::string MetaPath() const;

 private:
  struct InFlight {
    uint32_t copy;
    SegmentId segment;
    double done_time;
  };

  uint64_t SlotOffset(SegmentId segment) const;
  uint64_t CrcOffset(SegmentId segment) const;

  Env* env_;
  std::string dir_;
  SystemParams params_;
  DiskArrayModel* disks_;
  std::unique_ptr<RandomWriteFile> copies_[2];
  std::vector<InFlight> in_flight_;
  uint64_t segments_written_ = 0;

  Counter* m_segment_writes_ = nullptr;
  Counter* m_segment_write_bytes_ = nullptr;
  Counter* m_segment_reads_ = nullptr;
  Counter* m_read_errors_ = nullptr;
  Counter* m_meta_commits_ = nullptr;
  Timer* m_write_service_seconds_ = nullptr;
};

}  // namespace mmdb

#endif  // MMDB_BACKUP_BACKUP_STORE_H_
