#include "parallel/thread_pool.h"

#include <algorithm>
#include <utility>

namespace mmdb {

namespace {
// -1 off-pool; workers set their index for the thread's lifetime.
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  tls_worker_index = static_cast<int>(worker_index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t DefaultSweepWidth(std::size_t n) {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::max<std::size_t>(1, std::min(n, hw));
}

}  // namespace mmdb
