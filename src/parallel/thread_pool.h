#ifndef MMDB_PARALLEL_THREAD_POOL_H_
#define MMDB_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmdb {

// Fixed-size worker pool over a plain FIFO queue. Dependency-free by
// design (the bench harness must not grow third-party requirements), and
// deliberately small: no futures, no work stealing, no priorities — the
// sweep helpers in parallel.h layer ordered results and Status capture on
// top of Submit().
//
// Shutdown is graceful: the destructor (or Shutdown()) stops accepting new
// work, lets the workers DRAIN everything already queued, and joins them.
// Work submitted after shutdown began is rejected (Submit returns false)
// and never runs, so callers cannot lose track of a task silently.
//
// Thread-safety: Submit() may be called from any thread, including from
// inside a running task. Tasks must not touch shared mutable state without
// their own synchronization — the engines driven by the sweep runner are
// single-threaded and each worker owns its engine outright (DESIGN.md §12).
//
// Pools are reusable: a pool outlives any number of RunSweep/ParallelFor
// rounds (parallel.h's pool-taking overloads), so long-lived owners — the
// bench SweepRunner, the engine's recovery pipeline — pay thread start-up
// once instead of per call.
class ThreadPool {
 public:
  // Spawns exactly `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains the queue and joins the workers.
  ~ThreadPool();

  // Enqueues `task` for execution on some worker. Returns false (dropping
  // the task) once shutdown has begun. `task` must not throw — wrap
  // user-supplied closures with the capture helpers in parallel.h.
  bool Submit(std::function<void()> task);

  // Stops accepting work, runs everything already queued, joins the
  // workers. Idempotent; called by the destructor.
  void Shutdown();

  std::size_t num_threads() const { return workers_.size(); }

  // Tasks currently queued (not yet picked up). Mostly for tests.
  std::size_t QueueDepth() const;

  // Index of the calling thread within its owning pool ([0, num_threads)),
  // or -1 when called off-pool (the coordinating thread, the serial path).
  // Lets per-phase instrumentation (recovery's per-thread busy accounting)
  // attribute work without threading ids through every closure.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(std::size_t worker_index);

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// min(n, hardware_concurrency), never 0 — the width RunSweep uses when the
// caller asks for "as wide as the machine".
std::size_t DefaultSweepWidth(std::size_t n);

}  // namespace mmdb

#endif  // MMDB_PARALLEL_THREAD_POOL_H_
