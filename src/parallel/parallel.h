#ifndef MMDB_PARALLEL_PARALLEL_H_
#define MMDB_PARALLEL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"
#include "util/status.h"
#include "util/statusor.h"

namespace mmdb {

// Sweep helpers on top of ThreadPool: run N independent closures across
// min(N, jobs) workers and hand the results back IN SUBMISSION ORDER, so a
// parallel sweep is observationally identical to the serial loop it
// replaced (same rows, same order — only the wall clock moves).
//
// jobs <= 1 is the old serial path: every closure runs inline on the
// calling thread, no pool, no worker threads at all. This keeps `--jobs=1`
// bit-for-bit equivalent to the pre-parallel harness even under tools that
// observe thread creation.
//
// Exceptions thrown by a closure are captured and converted to INTERNAL
// Status — a sweep never terminates the process because one point blew up.

namespace parallel_internal {

// Completion latch: Wait() returns once `count` Done() calls arrived.
class SweepLatch {
 public:
  explicit SweepLatch(std::size_t count) : remaining_(count) {}

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) all_done_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable all_done_;
  std::size_t remaining_;
};

inline Status CurrentExceptionToStatus() {
  try {
    throw;
  } catch (const std::exception& e) {
    return InternalError(std::string("task threw: ") + e.what());
  } catch (...) {
    return InternalError("task threw a non-std::exception");
  }
}

}  // namespace parallel_internal

// Runs tasks[i]() for every i across `pool`'s workers (all of them — the
// pool's width is the sweep's width); returns the per-task results indexed
// exactly like `tasks`. `pool` may be null, selecting the serial inline
// path. T is anything movable; closures returning StatusOr<T> get failures
// propagated in their slot, and a throwing closure yields an INTERNAL
// StatusOr in its slot.
//
// The pool is reused, not consumed: the call leaves it running, so a
// long-lived owner (SweepRunner, the recovery pipeline) amortizes thread
// start-up across many rounds.
template <typename T>
std::vector<StatusOr<T>> RunSweep(
    ThreadPool* pool, const std::vector<std::function<StatusOr<T>()>>& tasks) {
  std::vector<StatusOr<T>> results;
  results.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    results.push_back(InternalError("sweep task never ran"));
  }
  if (tasks.empty()) return results;

  auto run_one = [&tasks, &results](std::size_t i) {
    try {
      results[i] = tasks[i]();
    } catch (...) {
      results[i] = parallel_internal::CurrentExceptionToStatus();
    }
  };

  if (pool == nullptr) {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_one(i);
    return results;
  }

  parallel_internal::SweepLatch latch(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    // Each worker writes only its own pre-sized slot; the latch's release
    // sequence publishes every slot to this thread before Wait() returns.
    if (!pool->Submit([&run_one, &latch, i] {
          run_one(i);
          latch.Done();
        })) {
      // Shutdown raced the sweep; run the slot inline so no task is lost.
      run_one(i);
      latch.Done();
    }
  }
  latch.Wait();
  return results;
}

// Historical entry point: spins up a transient pool of min(jobs, tasks)
// workers for this one sweep. jobs <= 1 is the serial path. Prefer the
// pool-taking overload when sweeping more than once.
template <typename T>
std::vector<StatusOr<T>> RunSweep(
    std::size_t jobs, const std::vector<std::function<StatusOr<T>()>>& tasks) {
  if (jobs <= 1 || tasks.size() <= 1) return RunSweep<T>(nullptr, tasks);
  ThreadPool pool(std::min(jobs, tasks.size()));
  return RunSweep<T>(&pool, tasks);
}

// Status-only fan-out: body(i) for i in [0, n). Returns the first non-OK
// Status in index order (all iterations still run to completion).
inline Status ParallelFor(std::size_t jobs, std::size_t n,
                          const std::function<Status(std::size_t)>& body) {
  std::vector<std::function<StatusOr<bool>()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&body, i]() -> StatusOr<bool> {
      MMDB_RETURN_IF_ERROR(body(i));
      return true;
    });
  }
  std::vector<StatusOr<bool>> results = RunSweep<bool>(jobs, tasks);
  for (const StatusOr<bool>& r : results) {
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

// Chunked range fan-out: partitions [0, n) into contiguous chunks of (at
// most) `chunk` indices and runs body(begin, end) per chunk across `pool`
// (null = serially inline, over the SAME chunk decomposition, so a serial
// run is bit-identical to a parallel one for any chunk-deterministic
// body). One enqueue per chunk, not per index — the difference between
// submitting 128 segment loads and submitting 8 batches of 16. Returns the
// first non-OK Status in CHUNK ORDER (every chunk still runs).
inline Status ParallelFor(ThreadPool* pool, std::size_t n, std::size_t chunk,
                          const std::function<Status(std::size_t, std::size_t)>&
                              body) {
  if (n == 0) return Status::OK();
  chunk = std::max<std::size_t>(1, chunk);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;

  std::vector<Status> statuses(num_chunks);
  auto run_chunk = [&](std::size_t c) {
    std::size_t begin = c * chunk;
    std::size_t end = std::min(n, begin + chunk);
    try {
      statuses[c] = body(begin, end);
    } catch (...) {
      statuses[c] = parallel_internal::CurrentExceptionToStatus();
    }
  };

  if (pool == nullptr || num_chunks <= 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) run_chunk(c);
  } else {
    parallel_internal::SweepLatch latch(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      if (!pool->Submit([&run_chunk, &latch, c] {
            run_chunk(c);
            latch.Done();
          })) {
        run_chunk(c);
        latch.Done();
      }
    }
    latch.Wait();
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace mmdb

#endif  // MMDB_PARALLEL_PARALLEL_H_
