#ifndef MMDB_UTIL_JSON_H_
#define MMDB_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace mmdb {

// Minimal JSON emission and parsing, shared by the observability layer
// (metrics/trace export), the offline tools (`mmdb_log_dump --json`,
// `mmdb_stats`) and the bench sidecar files. Dependency-free by design:
// the engine must not grow third-party requirements for its telemetry.

// Streaming writer producing compact (single-line) JSON. Structural
// methods keep a nesting stack so commas are inserted automatically;
// misuse (e.g. a value where a key is required) is caught by assertions
// in debug builds and produces well-formed-but-wrong output otherwise.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Object member key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  // Non-finite values (the simulator's +infinity sentinels) are emitted as
  // null: JSON has no representation for them.
  void Double(double value);
  void Bool(bool value);
  void Null();
  // Embeds `json`, which must itself be a complete well-formed JSON value.
  void RawValue(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  // Appends `value` to `out` with JSON string escaping (no quotes).
  static void Escape(std::string_view value, std::string* out);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once the first element was written
  // (so the next one needs a comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

// Parsed JSON document node. Numbers are held as double (adequate for the
// counters and timings this tree produces: they are exact to 2^53).
class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses a complete JSON document (trailing whitespace allowed).
  // CORRUPTION on malformed input.
  [[nodiscard]] static StatusOr<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  // Object member lookup; nullptr if absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  // Chained lookup convenience: Find(a) then ->Find(b) ...
  const JsonValue* FindPath(std::initializer_list<std::string_view> keys) const;

  // Re-serializes this value (compact). Useful for tests and round-trips.
  std::string Dump() const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_JSON_H_
