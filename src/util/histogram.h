#ifndef MMDB_UTIL_HISTOGRAM_H_
#define MMDB_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mmdb {

// Running scalar statistics (count/mean/min/max/stddev) plus approximate
// percentiles via geometric bucketing (default ratio 1.25, starting at 1.0;
// one underflow bucket for values < 1). Used by the metrics layer to
// summarize latencies and per-transaction overheads. Values must be
// non-negative.
//
// The bucket ratio bounds the relative percentile error: a value reported
// from bucket b is within a factor of `ratio` of the true order statistic,
// so ratio 1.25 gives ~±12% at p999 while ratio 1.02 gives ~±1%. Latency
// histograms use a finer ratio (see kLatencyRatio); counters of modeled
// quantities keep the coarse default, whose memory footprint is 4x smaller.
class Histogram {
 public:
  static constexpr double kDefaultRatio = 1.25;
  // Finer ratio for tail-latency histograms (~±1% at p999, ~2 KB extra).
  static constexpr double kLatencyRatio = 1.02;

  Histogram();
  // Finer (or coarser) geometric ratio; must be > 1. All constructors cover
  // the same value range (~2.5e17); only the resolution changes.
  explicit Histogram(double ratio);

  void Add(double value);
  // Requires the same bucket ratio on both sides.
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const;
  double StandardDeviation() const;
  double bucket_ratio() const { return ratio_; }

  // Approximate p-th percentile, p in [0, 100]. Linear interpolation within
  // the containing bucket; exact at the extremes (min/max).
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // One-line human-readable summary.
  std::string ToString() const;

 private:
  static int NumBucketsFor(double ratio);

  int BucketFor(double value) const;
  // Inclusive lower / exclusive upper value bounds of bucket b.
  double BucketLower(int b) const;
  double BucketUpper(int b) const;

  double ratio_;
  double inv_log_ratio_;
  int num_buckets_;
  uint64_t count_;
  double min_;
  double max_;
  double sum_;
  double sum_squares_;
  std::vector<uint64_t> buckets_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_HISTOGRAM_H_
