#ifndef MMDB_UTIL_HISTOGRAM_H_
#define MMDB_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mmdb {

// Running scalar statistics (count/mean/min/max/stddev) plus approximate
// percentiles via geometric bucketing (ratio 1.25, starting at 1.0; one
// underflow bucket for values < 1). Used by the metrics layer to summarize
// latencies and per-transaction overheads. Values must be non-negative.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const;
  double StandardDeviation() const;

  // Approximate p-th percentile, p in [0, 100]. Linear interpolation within
  // the containing bucket; exact at the extremes (min/max).
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // One-line human-readable summary.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 180;  // covers up to ~1.25^179 ≈ 2.5e17
  static constexpr double kRatio = 1.25;

  static int BucketFor(double value);
  // Inclusive lower / exclusive upper value bounds of bucket b.
  static double BucketLower(int b);
  static double BucketUpper(int b);

  uint64_t count_;
  double min_;
  double max_;
  double sum_;
  double sum_squares_;
  std::vector<uint64_t> buckets_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_HISTOGRAM_H_
