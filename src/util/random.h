#ifndef MMDB_UTIL_RANDOM_H_
#define MMDB_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace mmdb {

// Deterministic, seedable pseudo-random generator (xorshift128+). Every
// stochastic component of the simulator draws from an explicitly seeded
// Random so that experiments replay bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to expand the seed into two nonzero state words.
    state_[0] = SplitMix(&seed);
    state_[1] = SplitMix(&seed);
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 0x9e3779b97f4a7c15ull;
  }

  // Uniform over [0, 2^64).
  uint64_t Next() {
    uint64_t s1 = state_[0];
    const uint64_t s0 = state_[1];
    const uint64_t result = s0 + s1;
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return result;
  }

  // Uniform over [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  // Uniform over [lo, hi). Requires lo < hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo < hi);
    return lo + Uniform(hi - lo);
  }

  // Uniform over [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponentially distributed with the given mean (inter-arrival times of a
  // Poisson process at rate 1/mean).
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

 private:
  static uint64_t SplitMix(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
};

// Deterministic Zipf(theta) rank generator over [0, n), rank 0 most popular:
// P(rank = k) proportional to 1/(k+1)^theta. Uses the Gray et al. inversion
// (the YCSB formulation): the harmonic normalizer zeta(n, theta) is
// precomputed once at construction, and each draw consumes exactly one
// uniform variate from the caller's Random, so adversarial workloads stay
// replayable bit-for-bit and skew does not perturb unrelated draw streams.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta)
      : n_(n),
        theta_(theta),
        zetan_(Zeta(n, theta)),
        zeta2_(Zeta(2, theta)),
        alpha_(1.0 / (1.0 - theta)),
        eta_((1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - zeta2_ / zetan_)) {
    assert(n > 0);
    assert(theta > 0.0 && theta < 1.0);
  }

  // Next rank in [0, n); consumes exactly one rng->NextDouble().
  uint64_t Next(Random* rng) {
    double u = rng->NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Generalized harmonic number sum_{i=1..n} 1/i^theta.
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_RANDOM_H_
