#ifndef MMDB_UTIL_RANDOM_H_
#define MMDB_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace mmdb {

// Deterministic, seedable pseudo-random generator (xorshift128+). Every
// stochastic component of the simulator draws from an explicitly seeded
// Random so that experiments replay bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to expand the seed into two nonzero state words.
    state_[0] = SplitMix(&seed);
    state_[1] = SplitMix(&seed);
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 0x9e3779b97f4a7c15ull;
  }

  // Uniform over [0, 2^64).
  uint64_t Next() {
    uint64_t s1 = state_[0];
    const uint64_t s0 = state_[1];
    const uint64_t result = s0 + s1;
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return result;
  }

  // Uniform over [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  // Uniform over [lo, hi). Requires lo < hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo < hi);
    return lo + Uniform(hi - lo);
  }

  // Uniform over [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponentially distributed with the given mean (inter-arrival times of a
  // Poisson process at rate 1/mean).
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

 private:
  static uint64_t SplitMix(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
};

}  // namespace mmdb

#endif  // MMDB_UTIL_RANDOM_H_
