#ifndef MMDB_UTIL_CRC32C_H_
#define MMDB_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mmdb {
namespace crc32c {

// Returns the CRC-32C (Castagnoli) of data[0..n-1], continuing from
// `init_crc` (the CRC of a preceding byte stretch, or 0 to start fresh).
// Implemented with an 8-way sliced table kernel (slicing-by-8): ~4-6x the
// throughput of the byte-at-a-time loop on long inputs, bit-identical
// results.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

// The classic byte-at-a-time table loop. Kept as the reference the sliced
// kernel is verified against (util_test) and benchmarked beside
// (micro_engine); not for production call sites.
uint32_t ExtendBytewise(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }
inline uint32_t Value(std::string_view s) { return Extend(0, s.data(), s.size()); }

// Masking (as in LevelDB): storing the CRC of data that itself embeds CRCs
// is error-prone; the mask permutes the value so nested CRCs stay distinct.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace mmdb

#endif  // MMDB_UTIL_CRC32C_H_
