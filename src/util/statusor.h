#ifndef MMDB_UTIL_STATUSOR_H_
#define MMDB_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace mmdb {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Mirrors absl::StatusOr<T> for the subset this library needs.
//
//   StatusOr<CheckpointId> id = ckpt->Run();
//   if (!id.ok()) return id.status();
//   Use(*id);
template <typename T>
class StatusOr {
 public:
  // Constructs from an error status. `status` must not be OK.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  // Constructs from a value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  // By value: callers routinely write `F().status()` on a temporary
  // StatusOr, and a reference into the dead temporary would dangle.
  Status status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mmdb

// Evaluates `rexpr` (a StatusOr<T>), propagating errors; otherwise binds the
// value to `lhs`. Usage: MMDB_ASSIGN_OR_RETURN(auto file, env->Open(p));
#define MMDB_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  MMDB_ASSIGN_OR_RETURN_IMPL_(                            \
      MMDB_STATUS_MACROS_CONCAT_(_status_or_, __LINE__), lhs, rexpr)

#define MMDB_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) return statusor.status();           \
  lhs = std::move(statusor).value()

#define MMDB_STATUS_MACROS_CONCAT_(x, y) MMDB_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define MMDB_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // MMDB_UTIL_STATUSOR_H_
