#include "util/coding.h"

namespace mmdb {

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v)) return false;
  if (v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace mmdb
