#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace mmdb {

std::string StringPrintf(const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  char fixed[512];
  int n = std::vsnprintf(fixed, sizeof(fixed), format, ap);
  va_end(ap);
  if (n < 0) return std::string();
  if (static_cast<size_t>(n) < sizeof(fixed)) return std::string(fixed, n);
  std::string result(n, '\0');
  va_start(ap, format);
  std::vsnprintf(result.data(), n + 1, format, ap);
  va_end(ap);
  return result;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string WithThousandsSeparators(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string HumanReadableCount(double n) {
  static const char* kSuffixes[] = {"", "Ki", "Mi", "Gi", "Ti"};
  int i = 0;
  while (n >= 1024.0 && i < 4) {
    n /= 1024.0;
    ++i;
  }
  return StringPrintf("%.1f%s", n, kSuffixes[i]);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace mmdb
