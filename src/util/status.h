#ifndef MMDB_UTIL_STATUS_H_
#define MMDB_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mmdb {

// Canonical error space for the library. The library does not use C++
// exceptions; every fallible operation returns a Status (or a StatusOr<T>,
// see statusor.h).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kAborted,        // e.g., a two-color constraint violation
  kCorruption,     // checksum mismatch, malformed log/backup data
  kIoError,        // Env-level failure
  kNotSupported,
  kResourceExhausted,
  kInternal,
};

// Returns a stable, human-readable name, e.g. "ABORTED".
std::string_view StatusCodeToString(StatusCode code);

// A cheap value type carrying success or an (error code, message) pair.
//
//   Status s = log->Append(rec);
//   if (!s.ok()) return s;
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Convenience factories mirroring absl::<Code>Error().
Status InvalidArgumentError(std::string_view msg);
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status OutOfRangeError(std::string_view msg);
Status FailedPreconditionError(std::string_view msg);
Status AbortedError(std::string_view msg);
Status CorruptionError(std::string_view msg);
Status IoError(std::string_view msg);
Status NotSupportedError(std::string_view msg);
Status ResourceExhaustedError(std::string_view msg);
Status InternalError(std::string_view msg);

}  // namespace mmdb

// Propagates a non-OK Status from an expression to the caller.
#define MMDB_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::mmdb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // MMDB_UTIL_STATUS_H_
