#include "util/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mmdb {

// --- JsonWriter ------------------------------------------------------------

void JsonWriter::Escape(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_.push_back(',');
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!has_element_.empty());
  has_element_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!has_element_.empty());
  has_element_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  assert(!pending_key_);
  if (!has_element_.empty()) {
    if (has_element_.back()) out_.push_back(',');
    has_element_.back() = true;
  }
  out_.push_back('"');
  Escape(key, &out_);
  out_.append("\":");
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  Escape(value, &out_);
  out_.push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_.append(buf);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_.append(buf);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_.append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_.append(buf);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
}

void JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_.append(json);
}

// --- JsonValue -------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(
    std::initializer_list<std::string_view> keys) const {
  const JsonValue* v = this;
  for (std::string_view k : keys) {
    if (v == nullptr) return nullptr;
    v = v->Find(k);
  }
  return v;
}

namespace {

void DumpTo(const JsonValue& v, JsonWriter* w) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      w->Null();
      break;
    case JsonValue::Type::kBool:
      w->Bool(v.bool_value());
      break;
    case JsonValue::Type::kNumber:
      w->Double(v.number_value());
      break;
    case JsonValue::Type::kString:
      w->String(v.string_value());
      break;
    case JsonValue::Type::kArray:
      w->BeginArray();
      for (const JsonValue& item : v.array_items()) DumpTo(item, w);
      w->EndArray();
      break;
    case JsonValue::Type::kObject:
      w->BeginObject();
      for (const auto& [k, item] : v.object_items()) {
        w->Key(k);
        DumpTo(item, w);
      }
      w->EndObject();
      break;
  }
}

}  // namespace

std::string JsonValue::Dump() const {
  JsonWriter w;
  DumpTo(*this, &w);
  return w.TakeString();
}

// Recursive-descent parser. Depth-limited so hostile input cannot blow the
// stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    MMDB_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return CorruptionError("json: trailing characters after document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return CorruptionError(std::string("json: expected '") + c + "'");
    }
    return Status::OK();
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return CorruptionError("json: nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return CorruptionError("json: unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        MMDB_ASSIGN_OR_RETURN(v.string_, ParseString());
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        const std::string_view word = c == 't' ? "true" : "false";
        if (text_.substr(pos_, word.size()) != word) {
          return CorruptionError("json: bad literal");
        }
        pos_ += word.size();
        v.bool_ = (c == 't');
        return v;
      }
      case 'n': {
        if (text_.substr(pos_, 4) != "null") {
          return CorruptionError("json: bad literal");
        }
        pos_ += 4;
        return JsonValue();
      }
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    MMDB_RETURN_IF_ERROR(Expect('{'));
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      MMDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      MMDB_RETURN_IF_ERROR(Expect(':'));
      MMDB_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      v.object_.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume('}')) return v;
      MMDB_RETURN_IF_ERROR(Expect(','));
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    MMDB_RETURN_IF_ERROR(Expect('['));
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      MMDB_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      v.array_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return v;
      MMDB_RETURN_IF_ERROR(Expect(','));
    }
  }

  StatusOr<std::string> ParseString() {
    MMDB_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return CorruptionError("json: truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return CorruptionError("json: bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not needed for
          // the escapes this library emits; lone surrogates pass through).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return CorruptionError("json: bad escape character");
      }
    }
    return CorruptionError("json: unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return CorruptionError("json: expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return CorruptionError("json: malformed number '" + token + "'");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace mmdb
