#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace mmdb {

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Clear(); }

void Histogram::Clear() {
  count_ = 0;
  min_ = std::numeric_limits<double>::max();
  max_ = 0.0;
  sum_ = 0.0;
  sum_squares_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

int Histogram::BucketFor(double value) {
  if (value < 1.0) return 0;
  int b = 1 + static_cast<int>(std::log(value) / std::log(kRatio));
  return std::min(b, kNumBuckets - 1);
}

double Histogram::BucketLower(int b) {
  if (b <= 0) return 0.0;
  return std::pow(kRatio, b - 1);
}

double Histogram::BucketUpper(int b) {
  if (b <= 0) return 1.0;
  return std::pow(kRatio, b);
}

void Histogram::Add(double value) {
  if (value < 0.0) value = 0.0;
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += value;
  sum_squares_ += value * value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StandardDeviation() const {
  if (count_ == 0) return 0.0;
  double n = static_cast<double>(count_);
  double variance = (sum_squares_ - sum_ * sum_ / n) / n;
  return variance <= 0.0 ? 0.0 : std::sqrt(variance);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  double threshold = static_cast<double>(count_) * (p / 100.0);
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(seen + buckets_[b]) >= threshold) {
      double within = (threshold - static_cast<double>(seen)) /
                      static_cast<double>(buckets_[b]);
      double lo = std::max(BucketLower(b), min());
      double hi = std::min(BucketUpper(b), max_);
      if (hi < lo) hi = lo;
      return lo + within * (hi - lo);
    }
    seen += buckets_[b];
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f stddev=%.3f min=%.3f p50=%.3f "
                "p99=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), Mean(),
                StandardDeviation(), min(), Percentile(50.0),
                Percentile(99.0), max_);
  return buf;
}

}  // namespace mmdb
