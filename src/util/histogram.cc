#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace mmdb {

int Histogram::NumBucketsFor(double ratio) {
  // Bucket 0 holds values < 1; bucket b >= 1 covers [ratio^(b-1), ratio^b).
  // Size the array so the top bucket reaches ~2.5e17, the ceiling of the
  // original fixed 180-bucket/1.25 layout.
  return 2 + static_cast<int>(std::ceil(std::log(2.5e17) / std::log(ratio)));
}

Histogram::Histogram() : Histogram(kDefaultRatio) {}

Histogram::Histogram(double ratio)
    : ratio_(ratio),
      inv_log_ratio_(1.0 / std::log(ratio)),
      num_buckets_(NumBucketsFor(ratio)),
      buckets_(static_cast<size_t>(num_buckets_), 0) {
  assert(ratio > 1.0);
  Clear();
}

void Histogram::Clear() {
  count_ = 0;
  min_ = std::numeric_limits<double>::max();
  max_ = 0.0;
  sum_ = 0.0;
  sum_squares_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

int Histogram::BucketFor(double value) const {
  if (value < 1.0) return 0;
  int b = 1 + static_cast<int>(std::log(value) * inv_log_ratio_);
  return std::min(b, num_buckets_ - 1);
}

double Histogram::BucketLower(int b) const {
  if (b <= 0) return 0.0;
  return std::pow(ratio_, b - 1);
}

double Histogram::BucketUpper(int b) const {
  if (b <= 0) return 1.0;
  return std::pow(ratio_, b);
}

void Histogram::Add(double value) {
  if (value < 0.0) value = 0.0;
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += value;
  sum_squares_ += value * value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  assert(ratio_ == other.ratio_);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (int i = 0; i < num_buckets_; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StandardDeviation() const {
  if (count_ == 0) return 0.0;
  double n = static_cast<double>(count_);
  double variance = (sum_squares_ - sum_ * sum_ / n) / n;
  return variance <= 0.0 ? 0.0 : std::sqrt(variance);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  double threshold = static_cast<double>(count_) * (p / 100.0);
  uint64_t seen = 0;
  for (int b = 0; b < num_buckets_; ++b) {
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(seen + buckets_[b]) >= threshold) {
      double within = (threshold - static_cast<double>(seen)) /
                      static_cast<double>(buckets_[b]);
      double lo = std::max(BucketLower(b), min());
      double hi = std::min(BucketUpper(b), max_);
      if (hi < lo) hi = lo;
      return lo + within * (hi - lo);
    }
    seen += buckets_[b];
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f stddev=%.3f min=%.3f p50=%.3f "
                "p90=%.3f p99=%.3f p999=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), Mean(),
                StandardDeviation(), min(), Percentile(50.0), Percentile(90.0),
                Percentile(99.0), Percentile(99.9), max_);
  return buf;
}

}  // namespace mmdb
