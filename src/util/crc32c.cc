#include "util/crc32c.h"

#include <array>
#include <cstring>

namespace mmdb {
namespace crc32c {
namespace {

// CRC-32C polynomial, reflected.
constexpr uint32_t kPoly = 0x82f63b78u;

// Slice-by-8 (Intel's "slicing-by-8" technique, pure table C++ — no
// intrinsics): table[0] is the classic byte-at-a-time table; table[k][b]
// is the CRC contribution of byte b seen k positions earlier in the
// 8-byte block, so one loop iteration folds 8 input bytes with 8 table
// lookups and two 32-bit loads instead of 8 dependent byte steps.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

Tables MakeTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xff] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

const Tables& SlicedTables() {
  static const Tables tables = MakeTables();
  return tables;
}

inline uint32_t LoadLE32(const char* p) {
  // Byte-shift assembly keeps the kernel endian-independent; compilers
  // collapse it to a single load on little-endian targets.
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Tables& tables = SlicedTables();
  const auto& t = tables.t;
  uint32_t crc = init_crc ^ 0xffffffffu;
  // Below ~16 bytes the setup outweighs the slicing win; the byte loop at
  // the bottom handles short inputs and the tail alike.
  while (n >= 8) {
    uint32_t lo = LoadLE32(data) ^ crc;
    uint32_t hi = LoadLE32(data + 4);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
          t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][hi & 0xff] ^
          t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    data += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    crc = t[0][(crc ^ static_cast<unsigned char>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint32_t ExtendBytewise(uint32_t init_crc, const char* data, size_t n) {
  const auto& table = SlicedTables().t[0];
  uint32_t crc = init_crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace mmdb
