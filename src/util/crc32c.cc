#include "util/crc32c.h"

#include <array>

namespace mmdb {
namespace crc32c {
namespace {

// CRC-32C polynomial, reflected.
constexpr uint32_t kPoly = 0x82f63b78u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const std::array<uint32_t, 256>& table = Table();
  uint32_t crc = init_crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace mmdb
