#ifndef MMDB_UTIL_STRING_UTIL_H_
#define MMDB_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mmdb {

// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// "1234567" -> "1,234,567" (for bench tables).
std::string WithThousandsSeparators(uint64_t n);

// Human-readable byte/word counts: 8192 -> "8.0Ki".
std::string HumanReadableCount(double n);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace mmdb

#endif  // MMDB_UTIL_STRING_UTIL_H_
