#include "util/status.h"

namespace mmdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kNotSupported:
      return "NOT_SUPPORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgumentError(std::string_view msg) {
  return Status(StatusCode::kInvalidArgument, std::string(msg));
}
Status NotFoundError(std::string_view msg) {
  return Status(StatusCode::kNotFound, std::string(msg));
}
Status AlreadyExistsError(std::string_view msg) {
  return Status(StatusCode::kAlreadyExists, std::string(msg));
}
Status OutOfRangeError(std::string_view msg) {
  return Status(StatusCode::kOutOfRange, std::string(msg));
}
Status FailedPreconditionError(std::string_view msg) {
  return Status(StatusCode::kFailedPrecondition, std::string(msg));
}
Status AbortedError(std::string_view msg) {
  return Status(StatusCode::kAborted, std::string(msg));
}
Status CorruptionError(std::string_view msg) {
  return Status(StatusCode::kCorruption, std::string(msg));
}
Status IoError(std::string_view msg) {
  return Status(StatusCode::kIoError, std::string(msg));
}
Status NotSupportedError(std::string_view msg) {
  return Status(StatusCode::kNotSupported, std::string(msg));
}
Status ResourceExhaustedError(std::string_view msg) {
  return Status(StatusCode::kResourceExhausted, std::string(msg));
}
Status InternalError(std::string_view msg) {
  return Status(StatusCode::kInternal, std::string(msg));
}

}  // namespace mmdb
