#ifndef MMDB_UTIL_CODING_H_
#define MMDB_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace mmdb {

// Little-endian fixed-width and LEB128 varint encodings used by the log and
// backup formats. All Get* functions advance `*input` past the decoded bytes
// and return false (leaving outputs unspecified) on underflow or malformed
// input.

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);  // Host is little-endian on all supported targets.
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, 4);
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, 8);
}

inline bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

// LEB128 varints; at most 10 bytes for 64-bit values.
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);

// Length-prefixed byte strings.
void PutLengthPrefixed(std::string* dst, std::string_view value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

// Returns the encoded size of `value` as a varint.
int VarintLength(uint64_t value);

}  // namespace mmdb

#endif  // MMDB_UTIL_CODING_H_
