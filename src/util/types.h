#ifndef MMDB_UTIL_TYPES_H_
#define MMDB_UTIL_TYPES_H_

#include <cstdint>

namespace mmdb {

// Index of a record within the database, in [0, DatabaseParams::num_records).
using RecordId = uint64_t;

// Index of a segment (the unit of transfer to the backup disks), in
// [0, DatabaseParams::num_segments).
using SegmentId = uint64_t;

// Transaction identifier, assigned at Begin in increasing order.
using TxnId = uint64_t;

// Logical timestamp drawn from the engine's timestamp oracle. Used by the
// copy-on-update algorithms for tau(T), tau(S) and tau(CH).
using Timestamp = uint64_t;

// Log sequence number: a dense, monotonically increasing sequence over log
// records. Lsn 0 is reserved ("no record").
using Lsn = uint64_t;

// Checkpoint identifier, increasing with each checkpoint started.
using CheckpointId = uint64_t;

inline constexpr Lsn kInvalidLsn = 0;
inline constexpr TxnId kInvalidTxnId = 0;

}  // namespace mmdb

#endif  // MMDB_UTIL_TYPES_H_
