#ifndef MMDB_CORE_WORKLOAD_H_
#define MMDB_CORE_WORKLOAD_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "util/histogram.h"
#include "util/statusor.h"
#include "util/types.h"

namespace mmdb {

// Drives the paper's transaction load (Section 2.5) against an Engine:
// Poisson arrivals at params.txn.arrival_rate, each transaction updating
// params.txn.updates_per_txn distinct records (read-modify-write), with
// checkpoint-induced aborts retried after a short backoff with a freshly
// drawn record set (a statistically identical rerun, matching the analytic
// model's assumption).
//
// Beyond the paper's uniform load, the driver has an adversarial mode for
// interference studies (ROADMAP item 4's workload half): Zipf-skewed keys
// concentrate traffic on a few hot segments (maximizing collisions with
// the checkpoint sweep), the hot range can churn across segments over
// time, and a read-only fraction turns part of the load into lock-free
// reads. All of it deterministic under `seed`.
struct WorkloadOptions {
  double duration = 5.0;  // virtual seconds to run
  uint64_t seed = 42;
  // Begin checkpoints per the engine's scheduler (back-to-back or on the
  // configured interval). If false the workload runs checkpoint-free.
  bool run_checkpoints = true;
  // Mean of the exponential retry backoff for aborted-transaction reruns.
  double retry_backoff_mean = 0.002;

  // --- adversarial workload controls -------------------------------------
  enum class KeyDist : uint8_t { kUniform, kZipf };
  KeyDist key_dist = KeyDist::kUniform;
  // Skew of the Zipf rank distribution (only under kZipf); rank 0 is the
  // hottest record. Records are laid out contiguously, so hot ranks
  // cluster in the first segments.
  double zipf_theta = 0.99;
  // Shift the hot key range forward by one segment's worth of records
  // every this many virtual seconds (0 = stable hot set). Forces the
  // dirty-segment set to move under partial checkpoints.
  double hot_churn_interval = 0.0;
  // Fraction of arrivals that are read-only transactions (shared locks,
  // no updates, nothing logged but the commit record).
  double read_fraction = 0.0;
};

// Measured outcomes, including the paper's headline metric: checkpoint-
// related processor overhead per committed transaction, split into its
// synchronous (transaction-side) and asynchronous (checkpointer-side)
// components (Section 4).
struct WorkloadResult {
  uint64_t committed = 0;
  uint64_t attempts = 0;
  uint64_t color_restarts = 0;
  uint64_t lock_restarts = 0;  // no-wait lock conflicts retried
  uint64_t read_txns = 0;      // committed read-only transactions
  uint64_t checkpoints_completed = 0;
  double measured_seconds = 0.0;

  double sync_overhead_instr = 0.0;
  double async_overhead_instr = 0.0;
  double sync_per_txn = 0.0;
  double async_per_txn = 0.0;
  double overhead_per_txn = 0.0;  // sync + async, instructions/transaction

  double avg_checkpoint_duration = 0.0;  // begin-to-recoverable, seconds
  double avg_checkpoint_interval = 0.0;  // begin-to-begin, seconds
  double segments_flushed_per_ckpt = 0.0;
  double cou_copies_per_ckpt = 0.0;
  double quiesce_seconds_total = 0.0;

  // --- per-cause latency attribution (committed transactions only) -------
  // On the virtual clock a transaction's arrival-to-commit latency is
  // EXACTLY the sum of its admission stalls, its retry waits, and its
  // head-of-line queueing delay — service CPU is modeled as overhead
  // instructions, never as clock time — so the six components below sum
  // to latency_total_seconds (up to float rounding). Stalls are classified
  // at the blocking point by the checkpointer
  // (Checkpointer::ClassifyStall); retry waits by the abort cause the
  // TxnManager tagged (TxnAbortCause). Queueing delay is the gap between a
  // transaction's scheduled execution time (arrival or retry) and the
  // instant the serial driver actually gets to it: while one transaction
  // sits in an admission stall — or checkpoint I/O is serviced — the clock
  // moves past every arrival behind it, and that wait belongs to the
  // blocked arrivals themselves, not to the transaction holding the line.
  // Long checkpoint-held stalls therefore show up twice, once as the
  // stalled transaction's stall_* time and amplified here as every queued
  // transaction's queue time — exactly the tail-latency interference the
  // observatory exists to expose.
  // Under instant recovery a transaction can also stall on the per-segment
  // recovery latch (its first access to a not-yet-recovered segment); that
  // sixth cause joins the identity with the same exact-sum property.
  double stall_quiesce_seconds = 0.0;    // COU quiesce admission barrier
  double stall_ckpt_lock_seconds = 0.0;  // checkpoint-held segment locks
  double stall_recovery_wait_seconds = 0.0;  // on-demand recovery latch
  double backoff_color_seconds = 0.0;    // two-color restart backoff+deferral
  double backoff_lock_seconds = 0.0;     // lock-conflict restart backoff
  double queue_seconds = 0.0;            // head-of-line wait behind stalls
  double latency_total_seconds = 0.0;    // sum of arrival-to-commit latencies
  // Synchronous checkpoint overhead (COU copies, LSN maintenance, reruns)
  // as modeled CPU seconds. Charged to the processor meter rather than the
  // clock, so it is reported alongside — not inside — the stall identity.
  double sync_ckpt_cpu_seconds = 0.0;

  // Arrival-to-commit, microseconds. Finer bucket ratio than the metrics
  // default so p999 is resolved to ~±1% (see Histogram::kLatencyRatio).
  // Built by merging shard_latency in shard order at the end of the run;
  // Histogram::Merge is bucket-exact, so this is bit-identical to the
  // pre-shard direct accumulation at any shard count.
  Histogram latency{Histogram::kLatencyRatio};
  // The same latencies split by home shard (the shard of the transaction's
  // first drawn record — where its commit record was logged). One entry
  // per engine shard.
  std::vector<Histogram> shard_latency;

  std::string ToString() const;
};

// Deterministic record payload: embeds (record, marker) in the first 16
// bytes followed by a pseudo-random fill, so tests can verify both identity
// and content integrity after recovery.
std::string MakeRecordImage(size_t record_bytes, RecordId record,
                            uint64_t marker);

class WorkloadDriver {
 public:
  WorkloadDriver(Engine* engine, const WorkloadOptions& options);

  // Runs the workload for options.duration virtual seconds. May be called
  // once per driver.
  StatusOr<WorkloadResult> Run();

  // Full committed history per record (commit-LSN order) — the oracle for
  // crash-recovery verification: the recovered value of a record must be
  // its last image with commit LSN <= the durable LSN at crash time.
  struct CommitRecord {
    Lsn lsn;
    std::string image;
  };
  const std::unordered_map<RecordId, std::vector<CommitRecord>>& history()
      const {
    return history_;
  }

 private:
  Engine* engine_;
  WorkloadOptions options_;
  std::unordered_map<RecordId, std::vector<CommitRecord>> history_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_WORKLOAD_H_
