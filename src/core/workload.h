#ifndef MMDB_CORE_WORKLOAD_H_
#define MMDB_CORE_WORKLOAD_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "util/histogram.h"
#include "util/statusor.h"
#include "util/types.h"

namespace mmdb {

// Drives the paper's transaction load (Section 2.5) against an Engine:
// Poisson arrivals at params.txn.arrival_rate, each transaction updating
// params.txn.updates_per_txn distinct uniformly-chosen records
// (read-modify-write), with checkpoint-induced aborts retried after a short
// backoff with a freshly drawn record set (a statistically identical
// rerun, matching the analytic model's assumption).
struct WorkloadOptions {
  double duration = 5.0;  // virtual seconds to run
  uint64_t seed = 42;
  // Begin checkpoints per the engine's scheduler (back-to-back or on the
  // configured interval). If false the workload runs checkpoint-free.
  bool run_checkpoints = true;
  // Mean of the exponential retry backoff for two-color restarts.
  double retry_backoff_mean = 0.002;
};

// Measured outcomes, including the paper's headline metric: checkpoint-
// related processor overhead per committed transaction, split into its
// synchronous (transaction-side) and asynchronous (checkpointer-side)
// components (Section 4).
struct WorkloadResult {
  uint64_t committed = 0;
  uint64_t attempts = 0;
  uint64_t color_restarts = 0;
  uint64_t checkpoints_completed = 0;
  double measured_seconds = 0.0;

  double sync_overhead_instr = 0.0;
  double async_overhead_instr = 0.0;
  double sync_per_txn = 0.0;
  double async_per_txn = 0.0;
  double overhead_per_txn = 0.0;  // sync + async, instructions/transaction

  double avg_checkpoint_duration = 0.0;  // begin-to-recoverable, seconds
  double avg_checkpoint_interval = 0.0;  // begin-to-begin, seconds
  double segments_flushed_per_ckpt = 0.0;
  double cou_copies_per_ckpt = 0.0;
  double quiesce_seconds_total = 0.0;

  Histogram latency;  // arrival-to-commit, microseconds

  std::string ToString() const;
};

// Deterministic record payload: embeds (record, marker) in the first 16
// bytes followed by a pseudo-random fill, so tests can verify both identity
// and content integrity after recovery.
std::string MakeRecordImage(size_t record_bytes, RecordId record,
                            uint64_t marker);

class WorkloadDriver {
 public:
  WorkloadDriver(Engine* engine, const WorkloadOptions& options);

  // Runs the workload for options.duration virtual seconds. May be called
  // once per driver.
  StatusOr<WorkloadResult> Run();

  // Full committed history per record (commit-LSN order) — the oracle for
  // crash-recovery verification: the recovered value of a record must be
  // its last image with commit LSN <= the durable LSN at crash time.
  struct CommitRecord {
    Lsn lsn;
    std::string image;
  };
  const std::unordered_map<RecordId, std::vector<CommitRecord>>& history()
      const {
    return history_;
  }

 private:
  Engine* engine_;
  WorkloadOptions options_;
  std::unordered_map<RecordId, std::vector<CommitRecord>> history_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_WORKLOAD_H_
