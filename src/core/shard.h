#ifndef MMDB_CORE_SHARD_H_
#define MMDB_CORE_SHARD_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>

namespace mmdb {

// Segment-range partitioning of the primary database into N shards
// (DESIGN.md §17). Shard k owns the contiguous segment range
// [ShardBegin(k), ShardBegin(k+1)): the first `num_segments % shards`
// shards own one extra segment. Everything per-shard in the engine —
// the WAL stream a segment's REDO records go to, the lock-table stripe
// map, per-shard stall/commit accounting, the per-shard checkpoint sweep
// counters — derives from this one mapping, so the assignment is total,
// static, and identical at every shard count for the segments a shard
// owns.
//
// The layout is pure arithmetic over (shards, num_segments): it holds no
// engine state and is freely copyable, so subsystems can either hold a
// copy or a pointer to the Engine's instance.
struct ShardLayout {
  uint32_t shards = 1;
  uint32_t num_segments = 0;

  ShardLayout() = default;
  ShardLayout(uint32_t shards_in, uint32_t num_segments_in)
      : shards(shards_in == 0 ? 1 : shards_in),
        num_segments(num_segments_in) {}

  // First segment owned by shard k (== num_segments for k == shards).
  uint32_t ShardBegin(uint32_t k) const {
    uint32_t base = num_segments / shards;
    uint32_t rem = num_segments % shards;
    return k * base + std::min(k, rem);
  }

  // Number of segments shard k owns.
  uint32_t ShardSize(uint32_t k) const {
    return ShardBegin(k + 1) - ShardBegin(k);
  }

  // Owning shard of segment s (s < num_segments).
  uint32_t ShardOfSegment(uint32_t s) const {
    if (shards <= 1) return 0;
    uint32_t base = num_segments / shards;
    uint32_t rem = num_segments % shards;
    uint64_t wide_end = static_cast<uint64_t>(rem) * (base + 1);
    if (s < wide_end) return s / (base + 1);
    return rem + static_cast<uint32_t>((s - wide_end) / base);
  }
};

// Effective shard count: the MMDB_SHARDS environment variable (positive
// integer) overrides `configured` for every engine — mirroring
// MMDB_RECOVERY_THREADS — and the result is clamped to
// [1, num_segments] so every shard owns at least one segment.
inline uint32_t ResolveShards(uint32_t configured, uint32_t num_segments) {
  uint32_t shards = configured;
  if (const char* env = std::getenv("MMDB_SHARDS"); env != nullptr) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      shards = static_cast<uint32_t>(v);
    }
  }
  if (shards == 0) shards = 1;
  if (num_segments > 0 && shards > num_segments) shards = num_segments;
  return shards;
}

}  // namespace mmdb

#endif  // MMDB_CORE_SHARD_H_
