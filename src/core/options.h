#ifndef MMDB_CORE_OPTIONS_H_
#define MMDB_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "checkpoint/checkpointer.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "util/status.h"

namespace mmdb {

// Configuration for Engine::Open. Defaults give a 1 Mword (4 MiB, 128
// segment) database with the paper's cost/disk/transaction parameters and
// partial FUZZYCOPY checkpointing.
struct EngineOptions {
  // Hardware, database and workload parameters (Tables 2a-2d).
  SystemParams params = SystemParams::TestDefaults();

  // Which checkpointing algorithm maintains the backup database.
  Algorithm algorithm = Algorithm::kFuzzyCopy;

  // Full or partial (dirty-bit) checkpoints.
  CheckpointMode checkpoint_mode = CheckpointMode::kPartial;

  // Target begin-to-begin checkpoint spacing in seconds; 0 runs
  // checkpoints back to back (the paper's minimum-duration setting).
  double checkpoint_interval = 0.0;

  // Model stable RAM holding the log tail (Section 4): appended log
  // records are durable immediately and survive crashes. Required for
  // Algorithm::kFastFuzzy.
  bool stable_log_tail = false;

  // Group-commit policy: the engine flushes the log tail whenever it
  // exceeds this many bytes, and the workload driver additionally flushes
  // on this time cadence.
  uint64_t log_group_bytes = 16 * 1024;
  double log_flush_interval = 0.05;

  // Cap on segment-sized snapshot buffers (COU old copies and staging
  // copies); 0 = unbounded. See BufferPool.
  uint32_t max_snapshot_buffers = 0;

  // Permit Engine::WriteDelta / ApplyDelta under checkpointing algorithms
  // whose backups make logical REDO unsafe (fuzzy and two-color). Exists
  // for experiments that demonstrate the resulting corruption; never
  // enable it in real use.
  bool unsafe_allow_logical_logging = false;

  // Reclaim log space each time a checkpoint completes: frames before the
  // new checkpoint's begin marker can never be replayed again and are
  // dropped (the log file keeps a logical base offset, so previously
  // published offsets stay valid). Off by default so diagnostic scans of
  // the full history keep working.
  bool truncate_log_at_checkpoint = false;

  // --- observability -----------------------------------------------------
  // Keep the metrics registry and trace ring on. Per-event cost is a
  // cached-pointer atomic add (counters) or a few stores under an
  // uncontended mutex (trace), cheap enough for the default. Off, the
  // engine threads null sinks everywhere and Engine::DumpMetricsJson
  // emits null metric/trace sections.
  bool enable_metrics = true;

  // Append every checkpoint lifecycle event and recovery decision to a
  // durable provenance journal (`<dir>/audit.log`, DESIGN.md §18),
  // queryable and machine-checkable with the `mmdb_audit` tool. The
  // journal carries no registry instruments and consumes no virtual time,
  // so every modeled stat and the registry snapshot are bit-identical
  // with it on or off; its own health appears only in DumpMetricsJson's
  // top-level "audit" member (stripped by bench_diff). Independent of
  // enable_metrics.
  bool audit_journal = true;

  // Trace ring size in events; the oldest events are overwritten (and
  // counted as dropped) beyond this. Default Tracer::kDefaultCapacity =
  // 8192 events (~300 KiB of ring). The MMDB_TRACE_CAPACITY environment
  // variable, when set to a positive integer, overrides this value for
  // every engine (Tracer::ResolveCapacity) — used by tooling such as
  // check.sh's bench-smoke gate to bound sidecar sizes without touching
  // bench code.
  size_t trace_capacity = Tracer::kDefaultCapacity;

  // Completed-checkpoint stats retained by Checkpointer::history().
  // 0 = unbounded (the historical behaviour, for long diagnostic runs).
  size_t checkpoint_history_cap = 256;

  // Virtual-clock sampling epoch (seconds) for the engine's time-series
  // sampler: every `timeseries_epoch` of virtual time, a fixed set of
  // instruments (commits, aborts by cause, checkpoint progress, admission
  // stalls, log tail) is snapshotted into a bounded ring, exported in
  // DumpMetricsJson's "timeseries" member and as Perfetto counter tracks
  // by mmdb_trace_report. 0 disables sampling (the default; the dump's
  // member is then null). Requires enable_metrics.
  double timeseries_epoch = 0.0;
  // Max retained samples; beyond this the oldest samples are dropped
  // (with a drop count), bounding the dump size of long runs.
  size_t timeseries_capacity = 512;

  // Worker threads for Recover()'s parallel pipeline (concurrent backup
  // segment reloads, pipelined log scan, partitioned REDO replay —
  // DESIGN.md §14). 0 = hardware concurrency; 1 = the exact legacy
  // serial path. Every modeled RecoveryStats quantity is bit-identical
  // across settings — only real wall-clock changes. The
  // MMDB_RECOVERY_THREADS environment variable, when set to a positive
  // integer, overrides this value for every engine
  // (RecoveryManager::ResolveThreads) — used by check.sh to pin the
  // thread count recorded in trace baselines.
  uint32_t recovery_threads = 0;

  // Number of engine shards (DESIGN.md §17): segment-range partitions,
  // each with its own WAL stream file, lock-table stripe, and per-shard
  // commit/stall/checkpoint accounting. The simulation stays ONE logical
  // engine on one virtual clock at every shard count — sharding
  // partitions the mechanical subsystems, so shards=1 (the default)
  // reproduces the legacy modeled stats bit-for-bit and shards>1 yields
  // the identical modeled view with per-shard breakdowns. Clamped to
  // [1, num_segments]. The MMDB_SHARDS environment variable, when set to
  // a positive integer, overrides this value for every engine
  // (ResolveShards) — used by check.sh's shards=4 TSan lane.
  uint32_t shards = 1;

  // Serve transactions during restart (DESIGN.md §19): OpenExisting
  // returns as soon as the recovery *plan* is built (streams merged,
  // per-segment REDO buckets indexed, copy sources chosen) and segments
  // are recovered on demand — a transaction touching a not-yet-recovered
  // segment stalls on that segment's recovery latch (the sixth latency
  // cause, recovery_wait) while untouched segments reload in background
  // access-priority order (observed touch count desc, then segment id).
  // The final database state, the modeled RecoveryStats, and the
  // per-segment lineage are bit-identical to blocking recovery — instant
  // recovery reschedules when recovery work happens, never what it
  // computes. The MMDB_INSTANT_RECOVERY environment variable, when set
  // to 0 or 1, overrides this value for every engine
  // (Engine::ResolveInstantRecovery) — used by check.sh's instant
  // sanitize lane.
  bool instant_recovery = false;

  // Optional externally owned registry, e.g. shared by every engine of a
  // bench sweep so their counters aggregate. Must outlive the engine.
  // When null (and enable_metrics is set) the engine owns a private one.
  MetricsRegistry* shared_metrics = nullptr;

  // Directory (within the Env) holding the backup copies, checkpoint
  // metadata and log.
  std::string dir = "mmdb_data";

  Status Validate() const {
    MMDB_RETURN_IF_ERROR(params.Validate());
    if (checkpoint_interval < 0) {
      return InvalidArgumentError("checkpoint_interval must be >= 0");
    }
    if (algorithm == Algorithm::kFastFuzzy && !stable_log_tail) {
      return FailedPreconditionError(
          "FASTFUZZY requires stable_log_tail=true");
    }
    if (dir.empty()) return InvalidArgumentError("dir must be non-empty");
    if (shards == 0) return InvalidArgumentError("shards must be >= 1");
    return Status::OK();
  }
};

}  // namespace mmdb

#endif  // MMDB_CORE_OPTIONS_H_
