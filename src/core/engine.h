#ifndef MMDB_CORE_ENGINE_H_
#define MMDB_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "backup/backup_store.h"
#include "checkpoint/checkpointer.h"
#include "checkpoint/scheduler.h"
#include "core/options.h"
#include "core/shard.h"
#include "env/env.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "recovery/instant.h"
#include "recovery/recovery_manager.h"
#include "sim/cpu_meter.h"
#include "sim/disk_model.h"
#include "sim/virtual_clock.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/segment_table.h"
#include "txn/txn_manager.h"
#include "util/status.h"
#include "util/statusor.h"
#include "wal/log_manager.h"

namespace mmdb {

class FaultInjectionEnv;

// The memory-resident database engine: ties together the primary database,
// transaction manager, REDO log, ping-pong backup store, the selected
// checkpointing algorithm, and crash recovery.
//
// Time. The engine runs on a deterministic virtual clock. Client calls are
// instantaneous except where the checkpointing algorithm forces a wait (a
// segment the checkpointer holds locked through a disk I/O, or the COU
// quiesce barrier), in which case the clock advances to the release point.
// Log flushes and backup writes are asynchronous: they are issued
// immediately but become durable at their modeled completion times, so a
// Crash() right after Commit() loses the transaction exactly as a real
// power failure would. Use AdvanceTime to let in-flight I/O land.
//
// Typical use:
//   auto engine = Engine::Open(options, env).value();
//   Transaction* t = engine->Begin();
//   engine->Write(t, record, image);
//   engine->Commit(t);                       // ABORTED => retry (two-color)
//   engine->RunCheckpointToCompletion();
//   engine->Crash();                         // simulate power loss
//   engine->Recover();                       // rebuild from backup + log
//
// Thread-compatibility: single-threaded by design (cooperative scheduling
// is what makes every experiment reproducible); not thread-safe.
class Engine {
 public:
  // Creates a fresh engine (empty database, empty log, preallocated backup
  // copies) inside `env`. `env` must outlive the engine.
  static StatusOr<std::unique_ptr<Engine>> Open(const EngineOptions& options,
                                                Env* env);

  // Cold restart: reopens the backup copies and log left behind by an
  // earlier engine in `options.dir` (whether it shut down cleanly or not),
  // runs system-failure recovery to rebuild the primary copy, and resumes
  // — LSNs and checkpoint numbering (ping-pong alternation) continue where
  // they left off. The stored geometry must match `options.params`.
  // NOT_FOUND if the directory holds no engine state.
  static StatusOr<std::unique_ptr<Engine>> OpenExisting(
      const EngineOptions& options, Env* env);

  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- transactions ------------------------------------------------------
  Transaction* Begin();
  Status Read(Transaction* txn, RecordId record, std::string* out);
  Status Write(Transaction* txn, RecordId record, std::string_view image);
  // ABORTED is impossible here (two-color violations surface on the
  // Read/Write that crosses the boundary); returns the commit LSN.
  StatusOr<Lsn> Commit(Transaction* txn);
  void Abort(Transaction* txn);
  // Abort with explicit accounting: kColorViolation marks the attempt's
  // work as checkpoint-induced rerun overhead (the workload driver's retry
  // path); plain Abort uses kUser.
  void Abort(Transaction* txn, AbortReason reason);

  // Buffers a logical operation: add `delta` to the little-endian 8-byte
  // field at `field_offset` within `record`, logged as a compact kDelta
  // record (a fraction of an after-image). FAILED_PRECONDITION unless the
  // engine runs a copy-on-update algorithm: logical REDO is not
  // idempotent, so the backup must be an exact snapshot at the replay
  // start point (see SupportsLogicalLogging).
  Status WriteDelta(Transaction* txn, RecordId record, uint32_t field_offset,
                    int64_t delta);

  // One-shot delta transaction with the same retry behaviour as Apply.
  StatusOr<Lsn> ApplyDelta(RecordId record, uint32_t field_offset,
                           int64_t delta, int max_attempts = 100);

  // One-shot read-modify-write transaction over `updates`, retrying
  // two-color aborts (with a small virtual-time backoff) up to
  // `max_attempts` times. Returns the commit LSN.
  StatusOr<Lsn> Apply(
      const std::vector<std::pair<RecordId, std::string>>& updates,
      int max_attempts = 100);

  // Non-transactional point read of the current primary copy. During an
  // instant-recovery drain the touched segment is force-materialized
  // first (diagnostic reads see recovered bytes without moving the
  // clock).
  std::string_view ReadRecordRaw(RecordId record) const {
    if (instant_ != nullptr) {
      const_cast<Engine*>(this)->ForceRecoverRecord(record);
    }
    return db_->ReadRecord(record);
  }

  // --- checkpointing -----------------------------------------------------
  // Starts the next checkpoint. FAILED_PRECONDITION if one is running, or
  // if a COU algorithm would have to quiesce around open client
  // transactions (commit or abort them first).
  Status StartCheckpoint();
  bool CheckpointInProgress() const { return checkpointer_->InProgress(); }
  // Advances the in-progress checkpoint by one event, moving the clock to
  // that event's time. No-op when idle. On a device error the checkpoint
  // is aborted (dirty bits restored, previous complete backup untouched)
  // and the error returned; the next StartCheckpoint retries with the same
  // id, overwriting the torn ping-pong copy.
  Status StepCheckpoint();
  // Starts (if idle) and drives the checkpoint to completion.
  Status RunCheckpointToCompletion();
  // Most recent checkpoint failure (OK if none ever failed). Failures
  // encountered while AdvanceTime services checkpoint events are recorded
  // here rather than failing the timeline.
  const Status& last_checkpoint_error() const {
    return last_checkpoint_error_;
  }

  // --- time & durability -------------------------------------------------
  double now() const { return clock_.now(); }
  // Moves the clock forward, flushing the log on the group-commit cadence
  // and servicing due checkpoint events along the way. Device errors on
  // those background flushes/checkpoints degrade gracefully (durability
  // simply does not advance; the checkpoint aborts and will retry) instead
  // of failing the timeline.
  Status AdvanceTime(double seconds);
  // Forces a log flush now (durable at the modeled completion time).
  // Surfaces the device error if the flush failed.
  Status FlushLog();
  // Highest LSN guaranteed durable at the current time.
  Lsn DurableLsn() const { return log_->DurableLsn(clock_.now()); }

  // --- failure & recovery --------------------------------------------------
  // Simulates a system failure at the current time: volatile memory (the
  // primary database, log tail, transaction and checkpoint state) is lost;
  // in-flight backup writes tear. Only Recover() (or destruction) is legal
  // afterwards.
  Status Crash();
  // Rebuilds the primary database from the backup and log; advances the
  // clock by the modeled recovery time. With instant recovery enabled
  // (DESIGN.md §19) this returns as soon as the recovery PLAN is built —
  // the clock advances only by the log-read phase — and segments recover
  // on demand while transactions run; the returned stats are already the
  // blocking-equivalent modeled quantities.
  StatusOr<RecoveryStats> Recover();
  bool crashed() const { return crashed_; }

  // Runs the remaining on-demand recovery to completion: advances the
  // clock to the last background reload and materializes every pending
  // segment. No-op when no instant recovery is draining. Called
  // implicitly by StartCheckpoint (a checkpoint must sweep a fully
  // recovered primary).
  Status DrainRecovery();
  // True while an instant recovery still has unmaterialized segments.
  bool recovery_pending() const { return instant_ != nullptr; }
  uint64_t pending_recovery_segments() const {
    return instant_ != nullptr ? instant_->pending_segments() : 0;
  }
  // Effective instant-recovery setting (EngineOptions::instant_recovery
  // after the MMDB_INSTANT_RECOVERY override).
  bool instant_recovery_enabled() const { return instant_enabled_; }
  // The MMDB_INSTANT_RECOVERY environment variable (0 or 1) when set and
  // parseable, otherwise `configured`.
  static bool ResolveInstantRecovery(bool configured);
  // Availability metrics of the most recent restart (zeros when instant
  // recovery did not run): virtual seconds from the crash instant to
  // first admission vs to the last segment reload.
  double time_to_first_txn() const { return avail_.time_to_first_txn; }
  double time_to_full_recovery() const {
    return avail_.time_to_full_recovery;
  }
  // Stats of the most recent Recover(). Under instant recovery these are
  // provisional until the drain completes (an on-demand older-copy
  // fallback refines them); read after DrainRecovery() for the final,
  // blocking-equivalent values.
  const RecoveryStats& last_recovery() const { return last_recovery_; }

  // --- introspection -------------------------------------------------------
  const EngineOptions& options() const { return options_; }
  const SystemParams& params() const { return options_.params; }
  const CpuMeter& meter() const { return meter_; }
  const TxnManager& txns() const { return *txns_; }
  const Checkpointer& checkpointer() const { return *checkpointer_; }
  const CheckpointScheduler& scheduler() const { return scheduler_; }
  CheckpointScheduler& scheduler() { return scheduler_; }
  const Database& db() const { return *db_; }
  const BufferPool& buffers() const { return *buffers_; }
  // Effective shard layout (EngineOptions::shards after the MMDB_SHARDS
  // override and the [1, num_segments] clamp).
  const ShardLayout& shards() const { return shards_; }
  LogManager* log() { return log_.get(); }
  BackupStore* backup() { return backup_.get(); }
  Env* env() { return env_; }

  // --- observability -------------------------------------------------------
  // Null when options.enable_metrics is false.
  MetricsRegistry* metrics() { return metrics_; }
  const MetricsRegistry* metrics() const { return metrics_; }
  Tracer* tracer() { return tracer_.get(); }
  const Tracer* tracer() const { return tracer_.get(); }
  // Null unless options.timeseries_epoch > 0 (and metrics are enabled).
  const TimeSeriesSampler* timeseries() const { return sampler_.get(); }
  // Cumulative admission-stall time by cause (virtual seconds) since the
  // engine opened: time client calls spent blocked on the COU quiesce
  // barrier vs on checkpoint-held segment locks. Deterministic; the
  // workload driver reads deltas around each call to attribute a
  // transaction's latency to its cause.
  double stall_quiesce_seconds() const { return stall_quiesce_seconds_; }
  double stall_ckpt_lock_seconds() const { return stall_ckpt_lock_seconds_; }
  // Time client calls spent stalled on a per-segment recovery latch (the
  // sixth latency cause; nonzero only under instant recovery).
  double stall_recovery_wait_seconds() const {
    return stall_recovery_wait_seconds_;
  }
  // One self-describing JSON object: configuration, the metrics registry
  // snapshot (per-phase checkpoint timers, log flush stats, recovery phase
  // split, device accounting), the trace ring, and the retained checkpoint
  // history. Always valid JSON; the metrics/trace members are null when
  // observability is disabled.
  std::string DumpMetricsJson() const;

  // Provenance journal (DESIGN.md §18); null when options.audit_journal is
  // false. The journal is an audit artifact, never a recovery input.
  AuditJournal* audit() { return audit_.get(); }
  const AuditJournal* audit() const { return audit_.get(); }
  // Per-segment lineage of the most recent successful Recover() (empty
  // before any recovery) — the data behind DumpMetricsJson()'s
  // "audit.lineage" member and mmdb_audit's verify cross-check.
  const std::vector<SegmentLineage>& last_lineage() const {
    return last_lineage_;
  }

  // Paths within the Env. LogPath() is stream 0 (the classic single log);
  // LogPaths() lists every per-shard stream file.
  std::string LogPath() const { return options_.dir + "/wal.log"; }
  std::string AuditLogPath() const { return options_.dir + "/audit.log"; }
  std::vector<std::string> LogPaths() const {
    std::vector<std::string> paths;
    for (uint32_t k = 0; k < shards_.shards; ++k) {
      paths.push_back(LogManager::StreamPath(LogPath(), k));
    }
    return paths;
  }

 private:
  Engine(const EngineOptions& options, Env* env);
  // Builds the subsystems; `fresh` truncates/creates the log file, while a
  // restart leaves it for recovery to read first.
  Status Init(bool fresh);
  // Drops no-longer-replayable log prefix after a checkpoint completes.
  Status MaybeTruncateLog();

  // Waits (advances the clock) until a transaction may touch `segments`.
  Status WaitForAdmission(const std::vector<SegmentId>& segments);
  // Instant-recovery admission gate: stalls on each touched segment's
  // recovery latch (recovery_wait attribution) and materializes it.
  Status AdmitRecovery(const std::vector<SegmentId>& segments);
  // Force-materializes `record`'s segment for a diagnostic raw read.
  void ForceRecoverRecord(RecordId record);
  // Post-materialization bookkeeping: the one-time scheduler fixup after
  // an older-copy fallback, and finalization once every segment loaded.
  void SyncInstant();
  void FinalizeInstantRecovery();
  // A materialization failed fatally (neither backup copy readable, or
  // the log rotted since planning): journal recovery.error, abandon the
  // drain and halt the engine — data is unrecoverable.
  Status FailInstantRecovery(Status error);
  // Samples the time series (if enabled) up to the current clock.
  void TickSampler() {
    if (sampler_ != nullptr) sampler_->SampleUpTo(clock_.now());
  }
  // Flushes the log if the tail exceeds the group-commit threshold.
  Status MaybeGroupFlush();
  // Aborts the in-progress checkpoint after `error` and records it.
  Status FailCheckpoint(Status error);

  EngineOptions options_;
  Env* env_;

  // Observability sinks, built before every other subsystem so their
  // pointers can be threaded through. `metrics_` aliases either
  // `owned_metrics_` or options_.shared_metrics; both stay null with
  // enable_metrics off (every sink call site null-checks).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<Tracer> tracer_;
  Timer* m_admission_wait_ = nullptr;
  Timer* m_stall_quiesce_ = nullptr;
  Timer* m_stall_ckpt_lock_ = nullptr;
  // Created only when instant recovery is enabled, so the registry
  // snapshot stays byte-identical with the feature off.
  Timer* m_stall_recovery_wait_ = nullptr;
  double stall_quiesce_seconds_ = 0.0;
  double stall_ckpt_lock_seconds_ = 0.0;
  double stall_recovery_wait_seconds_ = 0.0;
  // The same stalls attributed to the shard of the stalled access set
  // (plain members, not registry instruments, so the registry snapshot is
  // identical at every shard count; surfaced in DumpMetricsJson's
  // "shards" member).
  std::vector<double> shard_stall_quiesce_;
  std::vector<double> shard_stall_ckpt_lock_;
  std::vector<double> shard_stall_recovery_wait_;
  // Built at Init when options.timeseries_epoch > 0; ticked whenever the
  // virtual clock advances (AdvanceTime events, checkpoint steps,
  // recovery).
  std::unique_ptr<TimeSeriesSampler> sampler_;
  // Set at Init when env_ is (or wraps into) a FaultInjectionEnv; the
  // engine's fault listener is registered on it and removed on destruction.
  FaultInjectionEnv* fault_env_ = nullptr;

  VirtualClock clock_;
  CpuMeter meter_;
  DiskArrayModel backup_disks_;
  ShardLayout shards_;

  std::unique_ptr<Database> db_;
  std::unique_ptr<SegmentTable> segments_;
  std::unique_ptr<BufferPool> buffers_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BackupStore> backup_;
  std::unique_ptr<TxnManager> txns_;
  TimestampOracle timestamps_;
  std::unique_ptr<Checkpointer> checkpointer_;
  CheckpointScheduler scheduler_;

  // Lazily built on the first Recover() that resolves to > 1 thread and
  // reused by later recoveries (ThreadPool is reusable across rounds).
  std::unique_ptr<ThreadPool> recovery_pool_;
  // Stats of the most recent successful Recover(), surfaced by
  // DumpMetricsJson()'s "recovery" member (wall vs modeled breakdown).
  RecoveryStats last_recovery_;
  bool has_last_recovery_ = false;
  // Provenance journal (null when options.audit_journal is false) and the
  // per-segment lineage of the most recent successful recovery.
  std::unique_ptr<AuditJournal> audit_;
  std::vector<SegmentLineage> last_lineage_;

  // --- instant recovery (DESIGN.md §19) ---------------------------------
  // Effective setting, resolved once at Init (env override included).
  bool instant_enabled_ = false;
  // Live on-demand recovery state; non-null only between an instant
  // Recover() and the drain's completion (or the next Crash()).
  std::unique_ptr<InstantRecovery> instant_;
  // One-shot guard for the post-fallback checkpoint-numbering fixup.
  bool instant_fixup_done_ = false;
  // Inputs Recover() saved for finalization: the crash instant (trace
  // events and the audit chain use the blocking path's timeline) and the
  // newest end-marker id (the scheduler fixup must re-run after a
  // fallback rewinds stats.checkpoint_id).
  double instant_crash_now_ = 0.0;
  CheckpointId instant_newest_end_id_ = 0;
  // Availability metrics of the most recent restart; `ran` gates the
  // dump's "availability" member so instant-off output is byte-identical
  // to pre-instant builds.
  struct Availability {
    bool ran = false;
    bool drained = false;
    double crash_time = 0.0;
    double time_to_first_txn = 0.0;
    double time_to_full_recovery = 0.0;
    uint64_t touch_loads = 0;
    uint64_t background_loads = 0;
    uint64_t force_loads = 0;
  };
  Availability avail_;

  uint64_t apply_seed_ = 0x6d6d6462;  // backoff jitter for Apply retries
  bool crashed_ = false;
  // True only while OpenExisting's implicit recovery runs (tags the
  // kRecoveryBegin trace event as a restart rather than a crash).
  bool restarting_ = false;
  Status last_checkpoint_error_;
  // Whether any logical delta has been staged: checkpoint failures then
  // halt the engine instead of retrying (delta replay is not idempotent).
  bool logical_deltas_logged_ = false;
};

}  // namespace mmdb

#endif  // MMDB_CORE_ENGINE_H_
