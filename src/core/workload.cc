#include "core/workload.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "txn/transaction.h"
#include "util/coding.h"
#include "util/random.h"
#include "util/string_util.h"

namespace mmdb {
namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

std::string MakeRecordImage(size_t record_bytes, RecordId record,
                            uint64_t marker) {
  std::string image;
  image.reserve(record_bytes);
  PutFixed64(&image, record);
  PutFixed64(&image, marker);
  Random fill(record * 0x9e3779b97f4a7c15ull ^ marker);
  while (image.size() + 8 <= record_bytes) {
    PutFixed64(&image, fill.Next());
  }
  while (image.size() < record_bytes) image.push_back('\0');
  image.resize(record_bytes);
  return image;
}

std::string WorkloadResult::ToString() const {
  return StringPrintf(
      "committed=%llu attempts=%llu restarts=%llu color+%llu lock "
      "ckpts=%llu | "
      "overhead/txn=%.1f (sync=%.1f async=%.1f) instr | "
      "ckpt dur=%.3fs interval=%.3fs flushed/ckpt=%.1f cou/ckpt=%.1f | "
      "latency p50=%.2gms p99=%.2gms p999=%.2gms | "
      "attr quiesce=%.3fs cklock=%.3fs recwait=%.3fs color=%.3fs "
      "lock=%.3fs queue=%.3fs",
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(attempts),
      static_cast<unsigned long long>(color_restarts),
      static_cast<unsigned long long>(lock_restarts),
      static_cast<unsigned long long>(checkpoints_completed),
      overhead_per_txn, sync_per_txn, async_per_txn,
      avg_checkpoint_duration, avg_checkpoint_interval,
      segments_flushed_per_ckpt, cou_copies_per_ckpt,
      latency.Percentile(50) / 1e3, latency.Percentile(99) / 1e3,
      latency.Percentile(99.9) / 1e3, stall_quiesce_seconds,
      stall_ckpt_lock_seconds, stall_recovery_wait_seconds,
      backoff_color_seconds, backoff_lock_seconds, queue_seconds);
}

WorkloadDriver::WorkloadDriver(Engine* engine, const WorkloadOptions& options)
    : engine_(engine), options_(options) {}

StatusOr<WorkloadResult> WorkloadDriver::Run() {
  const SystemParams& p = engine_->params();
  Random rng(options_.seed);
  WorkloadResult result;
  const ShardLayout& shards = engine_->shards();
  result.shard_latency.assign(shards.shards,
                              Histogram(Histogram::kLatencyRatio));

  const double start = engine_->now();
  const double end = start + options_.duration;

  // Pending transaction executions (arrivals and retries), earliest first.
  struct Pending {
    double time;
    double first_arrival;  // original arrival, for latency accounting
    int attempt;
    // Checkpoint the last attempt conflicted with; the retry is deferred
    // until that checkpoint completes (retrying against the same color
    // boundary would likely conflict again - the single-restart policy
    // assumed by the analytic model).
    CheckpointId conflict_ckpt = 0;
    bool read_only = false;
    // Per-cause latency accumulators across this transaction's attempts.
    // The clock only moves between arrival and commit during admission
    // stalls, retry waits, and head-of-line queueing (the driver is busy
    // with an earlier, stalled transaction when this one comes due), so at
    // commit these sum to the latency.
    double stall_quiesce = 0.0;
    double stall_lock = 0.0;
    double stall_recovery = 0.0;
    double backoff_color = 0.0;
    double backoff_lock = 0.0;
    double queue_wait = 0.0;
  };
  auto later = [](const Pending& a, const Pending& b) {
    return a.time > b.time;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(later)> queue(
      later);

  double next_arrival = start + rng.Exponential(1.0 / p.txn.arrival_rate);

  // Adversarial key generator. Zipf ranks map to record ids directly (hot
  // ranks cluster in the low segments); churn rotates the mapping forward
  // one segment's worth of records per epoch so the hot set migrates under
  // the checkpoint sweep. Extra RNG draws only happen in non-default
  // modes, so the paper's uniform workload replays bit-identically.
  std::optional<ZipfGenerator> zipf;
  if (options_.key_dist == WorkloadOptions::KeyDist::kZipf) {
    zipf.emplace(p.db.num_records(), options_.zipf_theta);
  }
  const uint64_t records_per_seg =
      std::max<uint64_t>(1, p.db.num_records() / p.db.num_segments());
  auto draw_record = [&]() -> RecordId {
    if (!zipf) return rng.Uniform(p.db.num_records());
    uint64_t rank = zipf->Next(&rng);
    if (options_.hot_churn_interval > 0.0) {
      const uint64_t epoch = static_cast<uint64_t>(
          (engine_->now() - start) / options_.hot_churn_interval);
      rank = (rank + epoch * records_per_seg) % p.db.num_records();
    }
    return rank;
  };

  MetricsRegistry* reg = engine_->metrics();
  Timer* m_latency =
      reg == nullptr
          ? nullptr
          : reg->timer("workload.latency_seconds", Histogram::kLatencyRatio);
  Timer* m_stall_q =
      reg == nullptr ? nullptr : reg->timer("workload.stall_quiesce_seconds");
  Timer* m_stall_l =
      reg == nullptr ? nullptr
                     : reg->timer("workload.stall_ckpt_lock_seconds");
  // Only materialized when the engine restarted in instant-recovery mode:
  // the timer (and gauge below) would otherwise change the dump byte-for-
  // byte against pre-instant baselines.
  Timer* m_stall_r =
      reg == nullptr || !engine_->instant_recovery_enabled()
          ? nullptr
          : reg->timer("workload.stall_recovery_wait_seconds");
  Timer* m_bk_color =
      reg == nullptr ? nullptr : reg->timer("workload.backoff_color_seconds");
  Timer* m_bk_lock =
      reg == nullptr ? nullptr : reg->timer("workload.backoff_lock_seconds");
  Timer* m_queue =
      reg == nullptr ? nullptr : reg->timer("workload.queue_seconds");

  const double sync0 = engine_->meter().SynchronousOverhead();
  const double async0 = engine_->meter().AsynchronousOverhead();
  const uint64_t ckpts0 = engine_->scheduler().completed();
  // Absolute checkpoint ordinal at start: the history deque is capped, so
  // positions must be recovered via the dropped count at read time.
  const uint64_t hist0_abs = engine_->checkpointer().history_dropped() +
                             engine_->checkpointer().history().size();

  uint64_t marker = 1;
  std::vector<RecordId> records(p.txn.updates_per_txn);

  while (true) {
    // Next event: an arrival, a queued retry, or a checkpoint begin.
    double ckpt_begin = kNever;
    if (options_.run_checkpoints && !engine_->CheckpointInProgress()) {
      ckpt_begin = std::max(engine_->now(),
                            engine_->scheduler().NextBeginTime());
    }
    double txn_time = queue.empty() ? next_arrival
                                    : std::min(next_arrival, queue.top().time);
    double event = std::min(txn_time, ckpt_begin);
    if (event >= end) break;

    // Let the engine service log flushes / checkpoint I/O up to the event.
    if (event > engine_->now()) {
      MMDB_RETURN_IF_ERROR(engine_->AdvanceTime(event - engine_->now()));
    }

    if (ckpt_begin <= txn_time) {
      MMDB_RETURN_IF_ERROR(engine_->StartCheckpoint());
      continue;
    }

    Pending pending;
    if (!queue.empty() && queue.top().time <= next_arrival) {
      pending = queue.top();
      queue.pop();
      // The clock may already be past this retry's scheduled time (an
      // earlier transaction stalled, or checkpoint I/O was serviced, while
      // it waited its turn): head-of-line queueing delay.
      pending.queue_wait += engine_->now() - pending.time;
      if (pending.conflict_ckpt != 0 && engine_->CheckpointInProgress() &&
          engine_->checkpointer().current_id() == pending.conflict_ckpt) {
        // Still the same sweep: defer further without executing. The added
        // wait is checkpoint-induced, so it counts against the color cause.
        const double now = engine_->now();
        pending.time = now + rng.Exponential(options_.retry_backoff_mean);
        pending.backoff_color += pending.time - now;
        queue.push(pending);
        continue;
      }
    } else {
      pending = Pending{};
      pending.time = next_arrival;
      pending.first_arrival = next_arrival;
      pending.attempt = 1;
      if (options_.read_fraction > 0.0) {
        pending.read_only = rng.Bernoulli(options_.read_fraction);
      }
      // Same head-of-line gap for a fresh arrival that came due while the
      // driver was busy with a stalled predecessor.
      pending.queue_wait += engine_->now() - pending.time;
      next_arrival += rng.Exponential(1.0 / p.txn.arrival_rate);
    }

    // Draw the access set (fresh on every attempt: a rerun is a
    // statistically identical transaction, as in the analytic model).
    for (uint32_t i = 0; i < p.txn.updates_per_txn; ++i) {
      for (;;) {
        RecordId r = draw_record();
        if (std::find(records.begin(), records.begin() + i, r) ==
            records.begin() + i) {
          records[i] = r;
          break;
        }
      }
    }

    ++result.attempts;
    // The driver is serial, so every admission stall the engine classifies
    // inside this window belongs to this attempt.
    const double stall_q0 = engine_->stall_quiesce_seconds();
    const double stall_l0 = engine_->stall_ckpt_lock_seconds();
    const double stall_r0 = engine_->stall_recovery_wait_seconds();
    Transaction* txn = engine_->Begin();
    txn->attempt = pending.attempt;
    Status st = Status::OK();
    std::string value;
    for (uint32_t i = 0; i < p.txn.updates_per_txn && st.ok(); ++i) {
      st = engine_->Read(txn, records[i], &value);
      if (!st.ok()) break;
      if (!pending.read_only) {
        st = engine_->Write(txn, records[i],
                            MakeRecordImage(p.db.record_bytes(), records[i],
                                            marker));
      }
    }
    StatusOr<Lsn> lsn = InternalError("uncommitted");
    if (st.ok()) {
      lsn = engine_->Commit(txn);
      if (!lsn.ok()) return lsn.status();
    }
    pending.stall_quiesce += engine_->stall_quiesce_seconds() - stall_q0;
    pending.stall_lock += engine_->stall_ckpt_lock_seconds() - stall_l0;
    pending.stall_recovery +=
        engine_->stall_recovery_wait_seconds() - stall_r0;
    if (st.ok()) {
      if (pending.read_only) {
        ++result.read_txns;
      } else {
        for (uint32_t i = 0; i < p.txn.updates_per_txn; ++i) {
          history_[records[i]].push_back(CommitRecord{
              *lsn,
              MakeRecordImage(p.db.record_bytes(), records[i], marker)});
        }
        ++marker;
      }
      ++result.committed;
      const double lat = engine_->now() - pending.first_arrival;
      // Latency lands in the home shard's histogram; the global histogram
      // is their bucket-exact merge after the run.
      const uint32_t home =
          records.empty()
              ? 0
              : shards.ShardOfSegment(engine_->db().SegmentOf(records[0]));
      result.shard_latency[home].Add(lat * 1e6);
      result.latency_total_seconds += lat;
      result.stall_quiesce_seconds += pending.stall_quiesce;
      result.stall_ckpt_lock_seconds += pending.stall_lock;
      result.stall_recovery_wait_seconds += pending.stall_recovery;
      result.backoff_color_seconds += pending.backoff_color;
      result.backoff_lock_seconds += pending.backoff_lock;
      result.queue_seconds += pending.queue_wait;
      if (m_latency != nullptr) m_latency->Record(lat);
      if (m_stall_q != nullptr && pending.stall_quiesce > 0.0) {
        m_stall_q->Record(pending.stall_quiesce);
      }
      if (m_stall_l != nullptr && pending.stall_lock > 0.0) {
        m_stall_l->Record(pending.stall_lock);
      }
      if (m_stall_r != nullptr && pending.stall_recovery > 0.0) {
        m_stall_r->Record(pending.stall_recovery);
      }
      if (m_bk_color != nullptr && pending.backoff_color > 0.0) {
        m_bk_color->Record(pending.backoff_color);
      }
      if (m_bk_lock != nullptr && pending.backoff_lock > 0.0) {
        m_bk_lock->Record(pending.backoff_lock);
      }
      if (m_queue != nullptr && pending.queue_wait > 0.0) {
        m_queue->Record(pending.queue_wait);
      }
    } else if (st.IsAborted()) {
      // Lock conflicts and color violations share the ABORTED status; the
      // TxnManager tags the cause on the transaction. Read it before Abort
      // retires (and frees) the transaction.
      const bool lock_conflict =
          txn->abort_cause == TxnAbortCause::kLockConflict;
      engine_->Abort(txn, lock_conflict ? AbortReason::kLockConflict
                                        : AbortReason::kColorViolation);
      const double now = engine_->now();
      Pending retry = pending;
      retry.time = now + rng.Exponential(options_.retry_backoff_mean);
      retry.attempt = pending.attempt + 1;
      if (lock_conflict) {
        ++result.lock_restarts;
        retry.conflict_ckpt = 0;
        retry.backoff_lock += retry.time - now;
      } else {
        ++result.color_restarts;
        retry.conflict_ckpt = engine_->CheckpointInProgress()
                                  ? engine_->checkpointer().current_id()
                                  : 0;
        retry.backoff_color += retry.time - now;
      }
      queue.push(retry);
    } else {
      engine_->Abort(txn);
      return st;
    }
  }
  if (end > engine_->now()) {
    MMDB_RETURN_IF_ERROR(engine_->AdvanceTime(end - engine_->now()));
  }

  result.measured_seconds = engine_->now() - start;
  for (const Histogram& h : result.shard_latency) result.latency.Merge(h);
  result.sync_overhead_instr =
      engine_->meter().SynchronousOverhead() - sync0;
  result.async_overhead_instr =
      engine_->meter().AsynchronousOverhead() - async0;
  result.sync_ckpt_cpu_seconds =
      p.InstructionsToSeconds(result.sync_overhead_instr);
  if (result.committed > 0) {
    result.sync_per_txn =
        result.sync_overhead_instr / static_cast<double>(result.committed);
    result.async_per_txn =
        result.async_overhead_instr / static_cast<double>(result.committed);
    result.overhead_per_txn = result.sync_per_txn + result.async_per_txn;
  }
  result.checkpoints_completed = engine_->scheduler().completed() - ckpts0;

  if (reg != nullptr) {
    // End-of-run attribution totals, exported with the engine dump so the
    // sidecar carries the full latency decomposition per sweep point.
    reg->gauge("workload.attr.stall_quiesce_seconds")
        ->Set(result.stall_quiesce_seconds);
    reg->gauge("workload.attr.stall_ckpt_lock_seconds")
        ->Set(result.stall_ckpt_lock_seconds);
    if (engine_->instant_recovery_enabled()) {
      reg->gauge("workload.attr.stall_recovery_wait_seconds")
          ->Set(result.stall_recovery_wait_seconds);
    }
    reg->gauge("workload.attr.backoff_color_seconds")
        ->Set(result.backoff_color_seconds);
    reg->gauge("workload.attr.backoff_lock_seconds")
        ->Set(result.backoff_lock_seconds);
    reg->gauge("workload.attr.queue_seconds")->Set(result.queue_seconds);
    reg->gauge("workload.attr.latency_total_seconds")
        ->Set(result.latency_total_seconds);
    reg->gauge("workload.attr.sync_ckpt_cpu_seconds")
        ->Set(result.sync_ckpt_cpu_seconds);
  }

  const auto& history = engine_->checkpointer().history();
  const uint64_t dropped = engine_->checkpointer().history_dropped();
  // First retained entry belonging to this run (0 if the cap already
  // discarded some of this run's checkpoints).
  const size_t hist0 =
      hist0_abs > dropped ? static_cast<size_t>(hist0_abs - dropped) : 0;
  double dur = 0.0, flushed = 0.0, cou = 0.0, quiesce = 0.0;
  for (size_t i = hist0; i < history.size(); ++i) {
    dur += history[i].duration();
    flushed += static_cast<double>(history[i].segments_flushed);
    cou += static_cast<double>(history[i].cou_copies);
    quiesce += history[i].quiesce_seconds;
  }
  size_t n = history.size() - hist0;
  if (n > 0) {
    result.avg_checkpoint_duration = dur / static_cast<double>(n);
    result.segments_flushed_per_ckpt = flushed / static_cast<double>(n);
    result.cou_copies_per_ckpt = cou / static_cast<double>(n);
    if (n > 1) {
      result.avg_checkpoint_interval =
          (history.back().begin_time - history[hist0].begin_time) /
          static_cast<double>(n - 1);
    }
  }
  result.quiesce_seconds_total = quiesce;
  return result;
}

}  // namespace mmdb
