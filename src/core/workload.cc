#include "core/workload.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "util/coding.h"
#include "util/random.h"
#include "util/string_util.h"

namespace mmdb {
namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

std::string MakeRecordImage(size_t record_bytes, RecordId record,
                            uint64_t marker) {
  std::string image;
  image.reserve(record_bytes);
  PutFixed64(&image, record);
  PutFixed64(&image, marker);
  Random fill(record * 0x9e3779b97f4a7c15ull ^ marker);
  while (image.size() + 8 <= record_bytes) {
    PutFixed64(&image, fill.Next());
  }
  while (image.size() < record_bytes) image.push_back('\0');
  image.resize(record_bytes);
  return image;
}

std::string WorkloadResult::ToString() const {
  return StringPrintf(
      "committed=%llu attempts=%llu restarts=%llu ckpts=%llu | "
      "overhead/txn=%.1f (sync=%.1f async=%.1f) instr | "
      "ckpt dur=%.3fs interval=%.3fs flushed/ckpt=%.1f cou/ckpt=%.1f | "
      "latency p50=%.2gms p99=%.2gms",
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(attempts),
      static_cast<unsigned long long>(color_restarts),
      static_cast<unsigned long long>(checkpoints_completed),
      overhead_per_txn, sync_per_txn, async_per_txn,
      avg_checkpoint_duration, avg_checkpoint_interval,
      segments_flushed_per_ckpt, cou_copies_per_ckpt,
      latency.Percentile(50) / 1e3, latency.Percentile(99) / 1e3);
}

WorkloadDriver::WorkloadDriver(Engine* engine, const WorkloadOptions& options)
    : engine_(engine), options_(options) {}

StatusOr<WorkloadResult> WorkloadDriver::Run() {
  const SystemParams& p = engine_->params();
  Random rng(options_.seed);
  WorkloadResult result;

  const double start = engine_->now();
  const double end = start + options_.duration;

  // Pending transaction executions (arrivals and retries), earliest first.
  struct Pending {
    double time;
    double first_arrival;  // original arrival, for latency accounting
    int attempt;
    // Checkpoint the last attempt conflicted with; the retry is deferred
    // until that checkpoint completes (retrying against the same color
    // boundary would likely conflict again - the single-restart policy
    // assumed by the analytic model).
    CheckpointId conflict_ckpt = 0;
  };
  auto later = [](const Pending& a, const Pending& b) {
    return a.time > b.time;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(later)> queue(
      later);

  double next_arrival = start + rng.Exponential(1.0 / p.txn.arrival_rate);

  const double sync0 = engine_->meter().SynchronousOverhead();
  const double async0 = engine_->meter().AsynchronousOverhead();
  const uint64_t ckpts0 = engine_->scheduler().completed();
  // Absolute checkpoint ordinal at start: the history deque is capped, so
  // positions must be recovered via the dropped count at read time.
  const uint64_t hist0_abs = engine_->checkpointer().history_dropped() +
                             engine_->checkpointer().history().size();

  uint64_t marker = 1;
  std::vector<RecordId> records(p.txn.updates_per_txn);

  while (true) {
    // Next event: an arrival, a queued retry, or a checkpoint begin.
    double ckpt_begin = kNever;
    if (options_.run_checkpoints && !engine_->CheckpointInProgress()) {
      ckpt_begin = std::max(engine_->now(),
                            engine_->scheduler().NextBeginTime());
    }
    double txn_time = queue.empty() ? next_arrival
                                    : std::min(next_arrival, queue.top().time);
    double event = std::min(txn_time, ckpt_begin);
    if (event >= end) break;

    // Let the engine service log flushes / checkpoint I/O up to the event.
    if (event > engine_->now()) {
      MMDB_RETURN_IF_ERROR(engine_->AdvanceTime(event - engine_->now()));
    }

    if (ckpt_begin <= txn_time) {
      MMDB_RETURN_IF_ERROR(engine_->StartCheckpoint());
      continue;
    }

    Pending pending;
    if (!queue.empty() && queue.top().time <= next_arrival) {
      pending = queue.top();
      queue.pop();
      if (pending.conflict_ckpt != 0 && engine_->CheckpointInProgress() &&
          engine_->checkpointer().current_id() == pending.conflict_ckpt) {
        // Still the same sweep: defer further without executing.
        pending.time =
            engine_->now() + rng.Exponential(options_.retry_backoff_mean);
        queue.push(pending);
        continue;
      }
    } else {
      pending = Pending{next_arrival, next_arrival, 1, 0};
      next_arrival += rng.Exponential(1.0 / p.txn.arrival_rate);
    }

    // Draw the access set (fresh on every attempt: a rerun is a
    // statistically identical transaction, as in the analytic model).
    for (uint32_t i = 0; i < p.txn.updates_per_txn; ++i) {
      for (;;) {
        RecordId r = rng.Uniform(p.db.num_records());
        if (std::find(records.begin(), records.begin() + i, r) ==
            records.begin() + i) {
          records[i] = r;
          break;
        }
      }
    }

    ++result.attempts;
    Transaction* txn = engine_->Begin();
    txn->attempt = pending.attempt;
    Status st = Status::OK();
    std::string value;
    for (uint32_t i = 0; i < p.txn.updates_per_txn && st.ok(); ++i) {
      st = engine_->Read(txn, records[i], &value);
      if (!st.ok()) break;
      st = engine_->Write(txn, records[i],
                          MakeRecordImage(p.db.record_bytes(), records[i],
                                          marker));
    }
    if (st.ok()) {
      StatusOr<Lsn> lsn = engine_->Commit(txn);
      if (!lsn.ok()) return lsn.status();
      for (uint32_t i = 0; i < p.txn.updates_per_txn; ++i) {
        history_[records[i]].push_back(CommitRecord{
            *lsn, MakeRecordImage(p.db.record_bytes(), records[i], marker)});
      }
      ++marker;
      ++result.committed;
      result.latency.Add((engine_->now() - pending.first_arrival) * 1e6);
    } else if (st.IsAborted()) {
      engine_->Abort(txn, AbortReason::kColorViolation);
      ++result.color_restarts;
      CheckpointId blocker = engine_->CheckpointInProgress()
                                 ? engine_->checkpointer().current_id()
                                 : 0;
      queue.push(Pending{
          engine_->now() + rng.Exponential(options_.retry_backoff_mean),
          pending.first_arrival, pending.attempt + 1, blocker});
    } else {
      engine_->Abort(txn);
      return st;
    }
  }
  if (end > engine_->now()) {
    MMDB_RETURN_IF_ERROR(engine_->AdvanceTime(end - engine_->now()));
  }

  result.measured_seconds = engine_->now() - start;
  result.sync_overhead_instr =
      engine_->meter().SynchronousOverhead() - sync0;
  result.async_overhead_instr =
      engine_->meter().AsynchronousOverhead() - async0;
  if (result.committed > 0) {
    result.sync_per_txn =
        result.sync_overhead_instr / static_cast<double>(result.committed);
    result.async_per_txn =
        result.async_overhead_instr / static_cast<double>(result.committed);
    result.overhead_per_txn = result.sync_per_txn + result.async_per_txn;
  }
  result.checkpoints_completed = engine_->scheduler().completed() - ckpts0;

  const auto& history = engine_->checkpointer().history();
  const uint64_t dropped = engine_->checkpointer().history_dropped();
  // First retained entry belonging to this run (0 if the cap already
  // discarded some of this run's checkpoints).
  const size_t hist0 =
      hist0_abs > dropped ? static_cast<size_t>(hist0_abs - dropped) : 0;
  double dur = 0.0, flushed = 0.0, cou = 0.0, quiesce = 0.0;
  for (size_t i = hist0; i < history.size(); ++i) {
    dur += history[i].duration();
    flushed += static_cast<double>(history[i].segments_flushed);
    cou += static_cast<double>(history[i].cou_copies);
    quiesce += history[i].quiesce_seconds;
  }
  size_t n = history.size() - hist0;
  if (n > 0) {
    result.avg_checkpoint_duration = dur / static_cast<double>(n);
    result.segments_flushed_per_ckpt = flushed / static_cast<double>(n);
    result.cou_copies_per_ckpt = cou / static_cast<double>(n);
    if (n > 1) {
      result.avg_checkpoint_interval =
          (history.back().begin_time - history[hist0].begin_time) /
          static_cast<double>(n - 1);
    }
  }
  result.quiesce_seconds_total = quiesce;
  return result;
}

}  // namespace mmdb
