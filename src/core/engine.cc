#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

#include "env/fault_injection_env.h"
#include "util/json.h"
#include "util/random.h"
#include "util/string_util.h"

namespace mmdb {
namespace {
constexpr double kNoEvent = std::numeric_limits<double>::infinity();
}  // namespace

Engine::Engine(const EngineOptions& options, Env* env)
    : options_(options),
      env_(env),
      backup_disks_(options.params.disk),
      scheduler_(options.checkpoint_interval) {}

StatusOr<std::unique_ptr<Engine>> Engine::Open(const EngineOptions& options,
                                               Env* env) {
  if (env == nullptr) return InvalidArgumentError("env must not be null");
  MMDB_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<Engine> engine(new Engine(options, env));
  MMDB_RETURN_IF_ERROR(engine->Init(/*fresh=*/true));
  return engine;
}

StatusOr<std::unique_ptr<Engine>> Engine::OpenExisting(
    const EngineOptions& options, Env* env) {
  if (env == nullptr) return InvalidArgumentError("env must not be null");
  MMDB_RETURN_IF_ERROR(options.Validate());
  if (!env->FileExists(options.dir + "/wal.log")) {
    return NotFoundError("no engine state in '" + options.dir +
                         "'; use Engine::Open to create one");
  }
  std::unique_ptr<Engine> engine(new Engine(options, env));
  MMDB_RETURN_IF_ERROR(engine->Init(/*fresh=*/false));
  // Restart is recovery: rebuild the primary copy from the backup and log
  // exactly as after a power failure, then resume numbering.
  engine->crashed_ = true;
  engine->restarting_ = true;
  // Recover() also restores the checkpoint numbering.
  MMDB_RETURN_IF_ERROR(engine->Recover().status());
  return engine;
}

Engine::~Engine() {
  // fault_env_ was probed at Init; when it is null the destructor must not
  // touch env_ at all — callers may legitimately destroy a plain Env before
  // an engine they have finished with.
  if (fault_env_ != nullptr) {
    fault_env_->RemoveFaultListeners(this);
  }
}

bool Engine::ResolveInstantRecovery(bool configured) {
  const char* env = std::getenv("MMDB_INSTANT_RECOVERY");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && (parsed == 0 || parsed == 1)) {
      return parsed == 1;
    }
  }
  return configured;
}

Status Engine::Init(bool fresh) {
  const SystemParams& p = options_.params;
  instant_enabled_ = ResolveInstantRecovery(options_.instant_recovery);
  MMDB_RETURN_IF_ERROR(env_->CreateDirIfMissing(options_.dir));

  if (options_.audit_journal) {
    // The provenance journal opens before any subsystem that might emit to
    // it. On a restart the existing journal is resumed (its valid prefix
    // kept) so checkpoint lineage survives crashes; a journal that cannot
    // open degrades to a disabled sink rather than failing the engine.
    audit_ = std::make_unique<AuditJournal>(env_, AuditLogPath());
    audit_->Open(fresh);
  }

  if (options_.enable_metrics) {
    if (options_.shared_metrics != nullptr) {
      metrics_ = options_.shared_metrics;
    } else {
      owned_metrics_ = std::make_unique<MetricsRegistry>();
      metrics_ = owned_metrics_.get();
    }
    tracer_ = std::make_unique<Tracer>(
        Tracer::ResolveCapacity(options_.trace_capacity));
    m_admission_wait_ = metrics_->timer("engine.admission_wait_seconds");
    m_stall_quiesce_ = metrics_->timer("engine.stall_quiesce_seconds");
    m_stall_ckpt_lock_ = metrics_->timer("engine.stall_ckpt_lock_seconds");
    if (instant_enabled_) {
      // Registered only when instant recovery is on, so the registry
      // snapshot — and therefore every instant-off baseline — stays
      // byte-identical.
      m_stall_recovery_wait_ =
          metrics_->timer("engine.stall_recovery_wait_seconds");
    }
    // If the caller wrapped the Env in fault injection, mirror every rule
    // firing into the trace so a failure's cause appears on the same
    // timeline as its effects (aborted checkpoints, flush errors).
    fault_env_ = dynamic_cast<FaultInjectionEnv*>(env_);
    if (fault_env_ != nullptr) {
      Counter* fired = metrics_->counter("faults.injected");
      Tracer* tracer = tracer_.get();
      const VirtualClock* clock = &clock_;
      fault_env_->AddFaultListener(
          this, [fired, tracer, clock](FaultKind kind, const std::string&,
                                       uint64_t op) {
            fired->Increment();
            tracer->Record(TraceEventType::kFaultInjected, clock->now(), 0.0,
                           static_cast<int64_t>(kind),
                           static_cast<int64_t>(op));
          });
    }
  }

  db_ = std::make_unique<Database>(p.db);
  segments_ = std::make_unique<SegmentTable>(p.db.num_segments());
  buffers_ = std::make_unique<BufferPool>(p.db.segment_bytes(),
                                          options_.max_snapshot_buffers);
  shards_ = ShardLayout(
      ResolveShards(options_.shards,
                    static_cast<uint32_t>(p.db.num_segments())),
      static_cast<uint32_t>(p.db.num_segments()));
  shard_stall_quiesce_.assign(shards_.shards, 0.0);
  shard_stall_ckpt_lock_.assign(shards_.shards, 0.0);
  shard_stall_recovery_wait_.assign(shards_.shards, 0.0);
  log_ = std::make_unique<LogManager>(env_, LogPath(), p, &meter_,
                                      options_.stable_log_tail,
                                      options_.log_flush_interval,
                                      shards_.shards);
  log_->set_obs(metrics_, tracer_.get());
  if (fresh) {
    MMDB_RETURN_IF_ERROR(log_->Open());
  }  // else: Recover() reads the existing file, then reopens it.
  backup_ = std::make_unique<BackupStore>(env_, options_.dir, p,
                                          &backup_disks_);
  backup_->set_obs(metrics_);
  MMDB_RETURN_IF_ERROR(backup_->Open());
  txns_ = std::make_unique<TxnManager>(db_.get(), segments_.get(), log_.get(),
                                       &timestamps_, &meter_, p, &shards_);
  txns_->set_obs(metrics_, tracer_.get());

  Checkpointer::Context ctx;
  ctx.db = db_.get();
  ctx.segments = segments_.get();
  ctx.buffers = buffers_.get();
  ctx.log = log_.get();
  ctx.backup = backup_.get();
  ctx.txns = txns_.get();
  ctx.timestamps = &timestamps_;
  ctx.meter = &meter_;
  ctx.params = p;
  ctx.metrics = metrics_;
  ctx.tracer = tracer_.get();
  ctx.history_cap = options_.checkpoint_history_cap;
  ctx.shards = shards_.shards;
  ctx.audit = audit_.get();
  MMDB_ASSIGN_OR_RETURN(
      checkpointer_,
      Checkpointer::Create(options_.algorithm, ctx, options_.checkpoint_mode));
  txns_->set_hooks(checkpointer_.get());

  if (metrics_ != nullptr && options_.timeseries_epoch > 0.0) {
    TimeSeriesSampler::Options ts;
    ts.epoch = options_.timeseries_epoch;
    ts.capacity = options_.timeseries_capacity;
    sampler_ = std::make_unique<TimeSeriesSampler>(ts);
    // Foreground progress and interference counters next to checkpoint
    // progress, so the exported counter tracks line up with the
    // checkpoint phase slices in the trace viewer.
    sampler_->AddCounter("txn.commits", metrics_->counter("txn.commits"));
    sampler_->AddCounter("txn.color_aborts",
                         metrics_->counter("txn.color_aborts"));
    sampler_->AddCounter("txn.lock_aborts",
                         metrics_->counter("txn.lock_aborts"));
    sampler_->AddCounter("ckpt.completed",
                         metrics_->counter("ckpt.completed"));
    sampler_->AddCounter("ckpt.segments_flushed",
                         metrics_->counter("ckpt.segments_flushed"));
    const Checkpointer* ckpt = checkpointer_.get();
    sampler_->AddGauge("ckpt.in_progress", [ckpt] {
      return ckpt->InProgress() ? 1.0 : 0.0;
    });
    sampler_->AddGauge("ckpt.sweep_pos", [ckpt] {
      return static_cast<double>(ckpt->SweepPosition());
    });
    const LogManager* log = log_.get();
    sampler_->AddGauge("log.tail_bytes", [log] {
      return static_cast<double>(log->TailBytes());
    });
    sampler_->AddGauge("engine.stall_quiesce_seconds",
                       [this] { return stall_quiesce_seconds_; });
    sampler_->AddGauge("engine.stall_ckpt_lock_seconds",
                       [this] { return stall_ckpt_lock_seconds_; });
    if (instant_enabled_) {
      sampler_->AddGauge("engine.stall_recovery_wait_seconds",
                         [this] { return stall_recovery_wait_seconds_; });
      sampler_->AddGauge("recovery.pending_segments", [this] {
        return static_cast<double>(pending_recovery_segments());
      });
    }
  }
  return Status::OK();
}

Transaction* Engine::Begin() {
  assert(!crashed_);
  return txns_->Begin(clock_.now());
}

Status Engine::AdmitRecovery(const std::vector<SegmentId>& segs) {
  if (instant_ == nullptr) return Status::OK();
  for (SegmentId s : segs) {
    if (instant_ == nullptr) break;  // drain finished mid-loop
    const double now = clock_.now();
    const double available = instant_->Touch(s, now);
    const double wait = available - now;
    // Materialize BEFORE advancing the clock: loading bytes costs no
    // virtual time, and the AdvanceTime sweep below must see this
    // segment already loaded so it does not claim the touch-triggered
    // load as a background one.
    Status loaded =
        instant_->Materialize(s, now, InstantRecovery::LoadTrigger::kTouch);
    if (!loaded.ok()) return FailInstantRecovery(std::move(loaded));
    if (wait > 0) {
      // The sixth stall cause: the transaction waits on this segment's
      // recovery latch until its backup reload completes.
      if (tracer_) {
        tracer_->Record(TraceEventType::kLockWait, now, available);
      }
      if (m_admission_wait_) m_admission_wait_->Record(wait);
      stall_recovery_wait_seconds_ += wait;
      shard_stall_recovery_wait_[shards_.ShardOfSegment(s)] += wait;
      if (m_stall_recovery_wait_) m_stall_recovery_wait_->Record(wait);
      MMDB_RETURN_IF_ERROR(AdvanceTime(wait));
    }
    SyncInstant();
  }
  return Status::OK();
}

Status Engine::WaitForAdmission(const std::vector<SegmentId>& segs) {
  // A restart's on-demand recovery gates admission first: a transaction
  // may not touch a segment whose post-crash image is not loaded yet.
  MMDB_RETURN_IF_ERROR(AdmitRecovery(segs));
  // Blocked on a checkpoint-held lock or the COU quiesce barrier: wait,
  // servicing checkpoint events so the blocker actually clears. Loops in
  // case servicing those events takes further locks on our segments.
  while (true) {
    double t = checkpointer_->EarliestExecutionTime(segs, clock_.now());
    if (t <= clock_.now()) return Status::OK();
    if (tracer_) {
      tracer_->Record(TraceEventType::kLockWait, clock_.now(), t);
    }
    double wait = t - clock_.now();
    if (m_admission_wait_) m_admission_wait_->Record(wait);
    // Attribute the stall to its cause for the latency breakdown.
    const uint32_t stall_shard =
        segs.empty() ? 0 : shards_.ShardOfSegment(segs.front());
    switch (checkpointer_->ClassifyStall(segs, clock_.now())) {
      case Checkpointer::StallCause::kQuiesce:
        stall_quiesce_seconds_ += wait;
        shard_stall_quiesce_[stall_shard] += wait;
        if (m_stall_quiesce_) m_stall_quiesce_->Record(wait);
        break;
      case Checkpointer::StallCause::kCheckpointLock:
        stall_ckpt_lock_seconds_ += wait;
        shard_stall_ckpt_lock_[stall_shard] += wait;
        if (m_stall_ckpt_lock_) m_stall_ckpt_lock_->Record(wait);
        break;
      case Checkpointer::StallCause::kNone:
        break;
    }
    MMDB_RETURN_IF_ERROR(AdvanceTime(wait));
  }
}

Status Engine::Read(Transaction* txn, RecordId record, std::string* out) {
  if (crashed_) return FailedPreconditionError("engine has crashed");
  MMDB_RETURN_IF_ERROR(WaitForAdmission({db_->SegmentOf(record)}));
  return txns_->Read(txn, record, out, clock_.now());
}

Status Engine::Write(Transaction* txn, RecordId record,
                     std::string_view image) {
  if (crashed_) return FailedPreconditionError("engine has crashed");
  MMDB_RETURN_IF_ERROR(WaitForAdmission({db_->SegmentOf(record)}));
  return txns_->Write(txn, record, image, clock_.now());
}

Status Engine::WriteDelta(Transaction* txn, RecordId record,
                          uint32_t field_offset, int64_t delta) {
  if (crashed_) return FailedPreconditionError("engine has crashed");
  if (!SupportsLogicalLogging(options_.algorithm) &&
      !options_.unsafe_allow_logical_logging) {
    return FailedPreconditionError(
        "logical (delta) operations require a copy-on-update checkpointing "
        "algorithm: replaying non-idempotent REDO against a fuzzy or "
        "boundary-consistent backup corrupts data");
  }
  MMDB_RETURN_IF_ERROR(WaitForAdmission({db_->SegmentOf(record)}));
  Status st = txns_->WriteDelta(txn, record, field_offset, delta, clock_.now());
  // Once a delta is staged the log may carry non-idempotent REDO records,
  // which rules out checkpoint abort-and-retry (see FailCheckpoint).
  if (st.ok()) logical_deltas_logged_ = true;
  return st;
}

StatusOr<Lsn> Engine::ApplyDelta(RecordId record, uint32_t field_offset,
                                 int64_t delta, int max_attempts) {
  Random backoff(apply_seed_++);
  Status last = Status::OK();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Transaction* txn = Begin();
    txn->attempt = attempt + 1;
    Status st = WriteDelta(txn, record, field_offset, delta);
    if (st.ok()) return Commit(txn);
    txns_->Abort(txn,
                 st.IsAborted() ? AbortReason::kColorViolation
                                : AbortReason::kUser,
                 clock_.now());
    if (!st.IsAborted()) return st;
    last = st;
    MMDB_RETURN_IF_ERROR(AdvanceTime(
        backoff.Exponential(2.0 * options_.params.txn.instructions /
                            (options_.params.cpu_mips * 1e6))));
  }
  return last;
}

StatusOr<Lsn> Engine::Commit(Transaction* txn) {
  if (crashed_) return FailedPreconditionError("engine has crashed");
  // Installing updates touches the written segments; respect checkpoint
  // locks covering them. Deduplicate — a transaction writing several
  // records of one segment must wait on (and be charged for) that
  // segment's lock once, not once per record.
  std::vector<SegmentId> segs;
  for (const auto& [record, image] : txn->pending) {
    segs.push_back(db_->SegmentOf(record));
  }
  for (const auto& [key, delta] : txn->pending_deltas) {
    segs.push_back(db_->SegmentOf(key.first));
  }
  std::sort(segs.begin(), segs.end());
  segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
  MMDB_RETURN_IF_ERROR(WaitForAdmission(segs));
  StatusOr<Lsn> lsn = txns_->Commit(txn, clock_.now());
  if (!lsn.ok()) return lsn;
  // Surface log-device errors to the committer. The transaction is applied
  // in memory and its records sit in the retained log tail — a later
  // successful flush still makes it durable — but the caller must learn
  // that durability did not advance here.
  MMDB_RETURN_IF_ERROR(MaybeGroupFlush());
  return lsn;
}

void Engine::Abort(Transaction* txn) {
  txns_->Abort(txn, AbortReason::kUser, clock_.now());
}

void Engine::Abort(Transaction* txn, AbortReason reason) {
  txns_->Abort(txn, reason, clock_.now());
}

StatusOr<Lsn> Engine::Apply(
    const std::vector<std::pair<RecordId, std::string>>& updates,
    int max_attempts) {
  Random backoff(apply_seed_++);
  Status last = Status::OK();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Transaction* txn = Begin();
    txn->attempt = attempt + 1;
    Status st = Status::OK();
    for (const auto& [record, image] : updates) {
      st = Write(txn, record, image);
      if (!st.ok()) break;
    }
    if (st.ok()) return Commit(txn);
    txns_->Abort(txn,
                 st.IsAborted() ? AbortReason::kColorViolation
                                : AbortReason::kUser,
                 clock_.now());
    if (!st.IsAborted()) return st;  // only two-color conflicts retry
    last = st;
    // Small jittered backoff lets the sweep move past the conflict zone.
    MMDB_RETURN_IF_ERROR(
        AdvanceTime(backoff.Exponential(2.0 * options_.params.txn.instructions /
                                        (options_.params.cpu_mips * 1e6))));
  }
  return last;
}

Status Engine::StartCheckpoint() {
  if (crashed_) return FailedPreconditionError("engine has crashed");
  // A checkpoint sweeps the whole primary; finish the restart first so it
  // copies recovered bytes (and so the post-fallback numbering fixup has
  // landed before NextId is taken).
  MMDB_RETURN_IF_ERROR(DrainRecovery());
  if (checkpointer_->InProgress()) {
    return FailedPreconditionError("checkpoint already in progress");
  }
  if (checkpointer_->QuiescesTransactions() && txns_->num_active() > 0) {
    return FailedPreconditionError(
        "this algorithm quiesces transaction processing at checkpoint "
        "begin; commit or abort open transactions first");
  }
  CheckpointId id = scheduler_.NextId();
  MMDB_RETURN_IF_ERROR(checkpointer_->Begin(id, clock_.now()));
  scheduler_.OnBegin(clock_.now());
  return Status::OK();
}

Status Engine::FailCheckpoint(Status error) {
  // Abort-and-retry: the attempt's partial work is discarded (dirty bits
  // restored, locks released) and the previous complete backup copy is
  // untouched, so a readable backup still exists. The scheduler's
  // completed count is unchanged, so the next StartCheckpoint reuses the
  // same id and rewrites the same torn ping-pong copy.
  checkpointer_->Abort(clock_.now(), error.ToString());
  last_checkpoint_error_ = error;
  if (logical_deltas_logged_) {
    // Retrying is only sound because replaying full-image REDO records is
    // idempotent: the retried copy mixes two attempts' segment images, and
    // replay from the certified begin marker repaints every record anyway.
    // Logical deltas are not idempotent — replaying them over a segment
    // the retry already rewrote would apply them twice — so a logical-
    // logging engine halts instead. The lost tail also discards any stale
    // end marker this attempt left in the unflushed tail, so recovery
    // restores the last complete checkpoint exactly.
    (void)Crash();
  }
  return error;
}

Status Engine::StepCheckpoint() {
  if (!checkpointer_->InProgress()) return Status::OK();
  StatusOr<double> next = checkpointer_->Step(clock_.now());
  if (!checkpointer_->InProgress()) {
    // The checkpoint completed. `next` may still hold an error: a failed
    // metadata rewrite after the end marker was durable. The copy is
    // complete and the log certifies it (recovery trusts the backward scan
    // over stale metadata), so the schedule advances either way and the
    // error is only surfaced, not retried.
    scheduler_.OnComplete(clock_.now());
    if (!next.ok()) {
      last_checkpoint_error_ = next.status();
      return next.status();
    }
    return MaybeTruncateLog();
  }
  if (!next.ok()) return FailCheckpoint(next.status());
  if (*next > clock_.now()) {
    clock_.AdvanceTo(*next);
    TickSampler();
  }
  return Status::OK();
}

Status Engine::RunCheckpointToCompletion() {
  if (!checkpointer_->InProgress()) {
    MMDB_RETURN_IF_ERROR(StartCheckpoint());
  }
  while (checkpointer_->InProgress()) {
    MMDB_RETURN_IF_ERROR(StepCheckpoint());
  }
  return Status::OK();
}

Status Engine::AdvanceTime(double seconds) {
  if (seconds < 0) return InvalidArgumentError("cannot move time backwards");
  double target = clock_.now() + seconds;
  // Service checkpoint events and group flushes due before `target`.
  while (true) {
    double next_flush = log_->TailBytes() > 0
                            ? clock_.now() + options_.log_flush_interval
                            : kNoEvent;
    double next_ckpt = kNoEvent;
    if (checkpointer_->InProgress()) {
      StatusOr<double> stepped = checkpointer_->Step(clock_.now());
      if (!checkpointer_->InProgress()) {
        // Completed — possibly with a failed metadata rewrite, which still
        // counts (the durable end marker certifies the copy; recovery
        // trusts the log over stale metadata). See StepCheckpoint.
        scheduler_.OnComplete(clock_.now());
        if (stepped.ok()) {
          MMDB_RETURN_IF_ERROR(MaybeTruncateLog());
        } else {
          last_checkpoint_error_ = stepped.status();
        }
        continue;  // state changed at the current instant; re-evaluate
      }
      if (!stepped.ok()) {
        // Background servicing degrades gracefully: the checkpoint aborts
        // (to be retried next interval) but the timeline — and the
        // transaction the caller is waiting on — continues. A logical-
        // logging engine halts instead (see FailCheckpoint), and the
        // caller sees its failed-precondition errors from then on.
        (void)FailCheckpoint(stepped.status());
        if (crashed_) {
          return FailedPreconditionError(
              "engine halted: checkpoint failed under logical logging");
        }
        continue;
      }
      next_ckpt = *stepped;
      if (next_ckpt <= clock_.now()) continue;  // more work due now
    }
    double next_event = std::min(next_flush, next_ckpt);
    if (next_event > target) break;
    clock_.AdvanceTo(next_event);
    TickSampler();
    if (next_event == next_flush) {
      // A failed cadence flush keeps the tail; durability just does not
      // advance until a later flush succeeds. With a zero flush interval a
      // persistent device error would retry at the same instant forever —
      // stop servicing events and let the clock jump to the target.
      if (!log_->Flush(clock_.now()).ok() &&
          options_.log_flush_interval <= 0) {
        break;
      }
    }
  }
  clock_.AdvanceTo(target);
  TickSampler();
  // Background reloads whose modeled completion the clock just passed
  // materialize here, so a segment never sits "recovered on the timeline
  // but stale in memory" across a time advance.
  if (instant_ != nullptr) {
    Status due = instant_->MaterializeDue(clock_.now());
    if (!due.ok()) return FailInstantRecovery(std::move(due));
    SyncInstant();
  }
  return Status::OK();
}

Status Engine::MaybeTruncateLog() {
  if (!options_.truncate_log_at_checkpoint) return Status::OK();
  StatusOr<CheckpointMeta> meta = backup_->ReadMeta();
  if (!meta.ok()) {
    return meta.status().IsNotFound() ? Status::OK() : meta.status();
  }
  // Everything before the newest complete checkpoint's begin marker is
  // unreachable by recovery (which replays forward from that marker).
  StatusOr<uint64_t> reclaimed = log_->TruncateBefore(meta->log_offset);
  if (reclaimed.ok() && audit_ != nullptr) {
    const uint64_t cut = meta->log_offset;
    audit_->Record("ckpt.log_cut", clock_.now(), [&](JsonWriter& w) {
      w.Key("cut");
      w.Uint(cut);
      w.Key("reclaimed");
      w.Uint(*reclaimed);
      w.Key("stream_bases");
      w.BeginArray();
      for (uint32_t k = 0; k < log_->num_streams(); ++k) {
        w.Uint(log_->StreamBaseOffset(k));
      }
      w.EndArray();
    });
  }
  // Truncation is purely an optimization, and a failed rewrite leaves the
  // original file intact (temp + rename): degrade by keeping the longer
  // log and retrying after the next checkpoint.
  if (!reclaimed.ok() && reclaimed.status().IsIoError()) return Status::OK();
  return reclaimed.status();
}

Status Engine::MaybeGroupFlush() {
  if (log_->TailBytes() >= options_.log_group_bytes) {
    return log_->Flush(clock_.now()).status();
  }
  return Status::OK();
}

Status Engine::FlushLog() { return log_->Flush(clock_.now()).status(); }

Status Engine::Crash() {
  if (crashed_) return FailedPreconditionError("already crashed");
  MMDB_RETURN_IF_ERROR(log_->Crash(clock_.now()));
  MMDB_RETURN_IF_ERROR(backup_->Crash(clock_.now()));
  txns_->Reset();
  checkpointer_->Reset();
  buffers_->Clear();
  backup_disks_.Reset();
  // A crash mid-drain abandons the on-demand recovery; its audit chain
  // stays open and the next recovery.begin severs it (legal grammar —
  // see VerifyAuditStructure).
  instant_.reset();
  crashed_ = true;
  return Status::OK();
}

StatusOr<RecoveryStats> Engine::Recover() {
  if (!crashed_) {
    return FailedPreconditionError("Recover() is only valid after Crash()");
  }
  if (tracer_) {
    tracer_->Record(TraceEventType::kRecoveryBegin, clock_.now(), 0.0,
                    restarting_ ? 1 : 0);
  }
  if (audit_ != nullptr) {
    const bool restart = restarting_;
    audit_->Record("recovery.begin", clock_.now(), [&](JsonWriter& w) {
      w.Key("restart");
      w.Bool(restart);
    });
  }
  restarting_ = false;
  uint32_t threads = RecoveryManager::ResolveThreads(options_.recovery_threads);
  if (threads > 1 &&
      (recovery_pool_ == nullptr || recovery_pool_->num_threads() < threads)) {
    recovery_pool_ = std::make_unique<ThreadPool>(threads);
  }
  RecoveryManager rm(env_, options_.params, &meter_, metrics_, tracer_.get(),
                     threads > 1 ? recovery_pool_.get() : nullptr);
  rm.set_audit(audit_.get());
  avail_ = Availability{};
  if (instant_enabled_) {
    // Instant recovery (DESIGN.md §19): build the plan (streams merged,
    // frames bucketed per segment, copy sources chosen), advance the
    // clock by the log-read phase only, and admit transactions — each
    // segment recovers on first touch or in background access-priority
    // order. The returned stats are already blocking-equivalent.
    const double crash_now = clock_.now();
    MMDB_ASSIGN_OR_RETURN(InstantRecoveryPlan plan,
                          rm.PlanInstant(backup_.get(), LogPaths(), db_.get(),
                                         segments_.get(), crash_now));
    const RecoveryStats stats = plan.result.stats;
    last_recovery_ = stats;
    has_last_recovery_ = true;
    last_lineage_ = plan.result.lineage;  // refined at drain on fallback
    instant_newest_end_id_ = plan.result.newest_end_id;
    MMDB_RETURN_IF_ERROR(log_->OpenExisting(plan.result.stream_valid_bytes,
                                            plan.result.last_lsn + 1));
    clock_.AdvanceBy(stats.log_read_seconds);
    TickSampler();
    crashed_ = false;
    // Provisional numbering fixup from the planned restore source; re-run
    // by SyncInstant if an on-demand fallback rewinds the checkpoint id.
    CheckpointId next = stats.checkpoint_id + 1;
    while (next <= instant_newest_end_id_) next += 2;
    scheduler_.Restore(next - 1, clock_.now());
    instant_fixup_done_ = false;
    instant_crash_now_ = crash_now;
    avail_.ran = true;
    avail_.crash_time = crash_now;
    avail_.time_to_first_txn = clock_.now() - crash_now;
    instant_ = std::make_unique<InstantRecovery>(
        std::move(plan), options_.params, backup_.get(), db_.get(), &meter_,
        metrics_, tracer_.get(), audit_.get());
    instant_->StartClock(clock_.now());
    // A cold start (no checkpoint to reload) is due in full immediately:
    // materialize and finish now so the audit chain closes like the
    // blocking path's. A warm start has nothing due yet — no-op.
    Status due = instant_->MaterializeDue(clock_.now());
    if (!due.ok()) return FailInstantRecovery(std::move(due));
    SyncInstant();
    return stats;
  }
  MMDB_ASSIGN_OR_RETURN(
      RecoveryResult result,
      rm.Recover(backup_.get(), LogPaths(), db_.get(), segments_.get(),
                 clock_.now()));
  last_recovery_ = result.stats;
  has_last_recovery_ = true;
  last_lineage_ = std::move(result.lineage);
  MMDB_RETURN_IF_ERROR(
      log_->OpenExisting(result.stream_valid_bytes, result.last_lsn + 1));
  clock_.AdvanceBy(result.stats.total_seconds);
  TickSampler();
  crashed_ = false;
  // Resume checkpoint numbering from what was actually restored. Without
  // this, a checkpoint completed in the log but not yet in the metadata
  // would get its id REUSED by the next sweep — and a later backward scan
  // could pair the old incarnation's end marker with the new (possibly
  // torn) incarnation's backup copy. The same hazard arises when recovery
  // fell back past a bad newer copy: skip beyond every end marker already
  // in the log, preserving the ping-pong parity so the next checkpoint
  // rewrites the damaged copy and leaves the restored one untouched.
  CheckpointId next = result.stats.checkpoint_id + 1;
  while (next <= result.newest_end_id) next += 2;
  scheduler_.Restore(next - 1, clock_.now());
  return result.stats;
}

Status Engine::FailInstantRecovery(Status error) {
  // Same terminal event (and chain closure) the blocking path's wrapper
  // journals when RecoverImpl fails.
  if (audit_ != nullptr) {
    const std::string text = error.ToString();
    audit_->Record("recovery.error", instant_crash_now_, [&](JsonWriter& w) {
      w.Key("error");
      w.String(text);
    });
    audit_->Sync();
  }
  instant_.reset();
  crashed_ = true;
  return error;
}

void Engine::ForceRecoverRecord(RecordId record) {
  if (instant_ == nullptr) return;
  // Diagnostic raw reads move no virtual time and must not fail the
  // caller: on a materialization error the read simply sees the
  // unrecovered image, and the next transactional touch of the segment
  // surfaces the error properly.
  (void)instant_->Materialize(db_->SegmentOf(record), clock_.now(),
                              InstantRecovery::LoadTrigger::kForce);
  SyncInstant();
}

void Engine::SyncInstant() {
  if (instant_ == nullptr) return;
  if (!instant_fixup_done_ && instant_->fell_back()) {
    // An on-demand fallback rewound the restore source to the previous
    // checkpoint; redo the numbering fixup from the refined stats (see
    // the comment in the blocking Recover()). Safe here: no checkpoint
    // can have begun — StartCheckpoint drains the recovery first.
    instant_fixup_done_ = true;
    CheckpointId next = instant_->stats().checkpoint_id + 1;
    while (next <= instant_newest_end_id_) next += 2;
    scheduler_.Restore(next - 1, clock_.now());
  }
  if (instant_->AllLoaded()) FinalizeInstantRecovery();
}

void Engine::FinalizeInstantRecovery() {
  std::unique_ptr<InstantRecovery> ir = std::move(instant_);
  // The last background reload may land after the last touch-stall the
  // clock actually waited on; full recovery is its completion time.
  const double t_end = ir->CompleteSchedule();
  avail_.time_to_full_recovery = t_end - avail_.crash_time;
  avail_.touch_loads = ir->touch_loads();
  avail_.background_loads = ir->background_loads();
  avail_.force_loads = ir->force_loads();
  avail_.drained = true;
  // Fallback refinements land here; stats were provisional since plan.
  last_recovery_ = ir->stats();
  has_last_recovery_ = true;
  last_lineage_ = ir->result().lineage;
  // Close the audit chain PlanInstant left open, and publish the registry
  // counters and phase trace events — same shapes, same crash-time
  // anchor, same values as the blocking path.
  if (audit_ != nullptr) {
    const RecoveryResult& r = ir->result();
    audit_->Record("recovery.lineage", instant_crash_now_,
                   [&](JsonWriter& w) {
                     w.Key("lineage");
                     WriteLineageJson(r.lineage, &w);
                   });
    audit_->Record("recovery.end", instant_crash_now_, [&](JsonWriter& w) {
      w.Key("checkpoint");
      w.Uint(r.stats.checkpoint_id);
      w.Key("copy");
      w.Uint(r.stats.copy);
      w.Key("fell_back");
      w.Bool(r.stats.fell_back_to_older_copy);
      w.Key("last_lsn");
      w.Uint(r.last_lsn);
      w.Key("applies");
      w.Uint(r.stats.updates_applied);
      w.Key("txns");
      w.Uint(r.stats.txns_redone);
    });
    audit_->Sync();
  }
  ir->PublishFinal(instant_crash_now_);
}

Status Engine::DrainRecovery() {
  if (instant_ == nullptr) return Status::OK();
  const double t_end = instant_->CompleteSchedule();
  if (t_end > clock_.now()) {
    // The post-advance sweep materializes everything that just completed
    // and finalizes.
    return AdvanceTime(t_end - clock_.now());
  }
  Status due = instant_->MaterializeDue(clock_.now());
  if (!due.ok()) return FailInstantRecovery(std::move(due));
  SyncInstant();
  return Status::OK();
}

std::string Engine::DumpMetricsJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("algorithm");
  w.String(AlgorithmName(options_.algorithm));
  w.Key("mode");
  w.String(options_.checkpoint_mode == CheckpointMode::kFull ? "full"
                                                             : "partial");
  w.Key("now");
  w.Double(clock_.now());
  w.Key("metrics");
  if (metrics_ != nullptr) {
    metrics_->ToJson(&w);
  } else {
    w.Null();
  }
  w.Key("trace");
  if (tracer_ != nullptr) {
    tracer_->ToJson(&w);
  } else {
    w.Null();
  }
  // Sampled counter/gauge series (null unless timeseries_epoch > 0);
  // becomes Perfetto counter tracks in mmdb_trace_report output.
  w.Key("timeseries");
  if (sampler_ != nullptr) {
    sampler_->ToJson(&w);
  } else {
    w.Null();
  }
  // Most recent Recover(): deterministic counters plus the modeled
  // (virtual-clock) phase split, and a "wall" block of real machine time
  // that every determinism comparison strips (IsWallClockField).
  w.Key("recovery");
  if (has_last_recovery_) {
    const RecoveryStats& r = last_recovery_;
    w.BeginObject();
    w.Key("checkpoint");
    w.Uint(r.checkpoint_id);
    w.Key("copy");
    w.Uint(r.copy);
    w.Key("segments_loaded");
    w.Uint(r.segments_loaded);
    w.Key("segments_retried");
    w.Uint(r.segments_retried);
    w.Key("log_bytes_read");
    w.Uint(r.log_bytes_read);
    w.Key("records_scanned");
    w.Uint(r.records_scanned);
    w.Key("updates_applied");
    w.Uint(r.updates_applied);
    w.Key("txns_redone");
    w.Uint(r.txns_redone);
    w.Key("fell_back");
    w.Bool(r.fell_back_to_older_copy);
    w.Key("modeled");
    w.BeginObject();
    w.Key("backup_read_seconds");
    w.Double(r.backup_read_seconds);
    w.Key("log_read_seconds");
    w.Double(r.log_read_seconds);
    w.Key("replay_cpu_seconds");
    w.Double(r.replay_cpu_seconds);
    w.Key("total_seconds");
    w.Double(r.total_seconds);
    w.EndObject();
    w.Key("wall");
    w.BeginObject();
    w.Key("threads");
    w.Uint(r.threads_used);
    w.Key("backup_read_seconds");
    w.Double(r.backup_read_wall_seconds);
    w.Key("log_scan_seconds");
    w.Double(r.log_scan_wall_seconds);
    w.Key("replay_seconds");
    w.Double(r.replay_wall_seconds);
    w.Key("thread_busy_seconds");
    w.BeginArray();
    for (double busy : r.thread_busy_seconds) w.Double(busy);
    w.EndArray();
    w.EndObject();
    w.EndObject();
  } else {
    w.Null();
  }
  // Per-shard breakdown of the partitioned engine: segment-range sizes,
  // home-shard commits, per-stream WAL volume, stall attribution, and
  // checkpoint flush counts. Present at every shard count (shards=1 shows
  // one row covering the whole database).
  w.Key("shards");
  w.BeginObject();
  w.Key("count");
  w.Uint(shards_.shards);
  w.Key("durable_epoch");
  w.Uint(log_->DurableEpoch(clock_.now()));
  w.Key("per_shard");
  w.BeginArray();
  for (uint32_t k = 0; k < shards_.shards; ++k) {
    w.BeginObject();
    w.Key("shard");
    w.Uint(k);
    w.Key("segments");
    w.Uint(shards_.ShardSize(k));
    w.Key("txn_commits");
    w.Uint(txns_->shard_commits()[k]);
    w.Key("log_appends");
    w.Uint(log_->StreamAppends(k));
    w.Key("log_bytes");
    w.Uint(log_->StreamAppendBytes(k));
    w.Key("stall_quiesce_seconds");
    w.Double(shard_stall_quiesce_[k]);
    w.Key("stall_ckpt_lock_seconds");
    w.Double(shard_stall_ckpt_lock_[k]);
    // Sixth cause, present only when instant recovery ran so the row
    // shape is unchanged for every pre-existing baseline.
    if (avail_.ran) {
      w.Key("stall_recovery_wait_seconds");
      w.Double(shard_stall_recovery_wait_[k]);
    }
    w.Key("ckpt_segments_flushed");
    w.Uint(checkpointer_->shard_segments_flushed()[k]);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("checkpoints");
  w.BeginObject();
  w.Key("history_cap");
  w.Uint(checkpointer_->history_cap());
  w.Key("history_dropped");
  w.Uint(checkpointer_->history_dropped());
  w.Key("history");
  w.BeginArray();
  for (const CheckpointStats& s : checkpointer_->history()) {
    w.BeginObject();
    w.Key("id");
    w.Uint(s.id);
    w.Key("begin");
    w.Double(s.begin_time);
    w.Key("end");
    w.Double(s.end_time);
    w.Key("segments_flushed");
    w.Uint(s.segments_flushed);
    w.Key("segments_skipped");
    w.Uint(s.segments_skipped);
    w.Key("checkpointer_copies");
    w.Uint(s.checkpointer_copies);
    w.Key("cou_copies");
    w.Uint(s.cou_copies);
    w.Key("quiesce_seconds");
    w.Double(s.quiesce_seconds);
    w.Key("lock_held_seconds");
    w.Double(s.lock_held_seconds);
    w.Key("flush_io_seconds");
    w.Double(s.flush_io_seconds);
    w.Key("log_wait_seconds");
    w.Double(s.log_wait_seconds);
    w.Key("copy_seconds");
    w.Double(s.copy_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  // Availability of the most recent restart (DESIGN.md §19): present only
  // when instant recovery actually ran, so instant-off output stays
  // byte-identical to builds without the feature. time_to_full_recovery
  // is 0 until the drain finishes (`drained` disambiguates); the load
  // counters are read live while the drain is still in flight.
  if (avail_.ran) {
    w.Key("availability");
    w.BeginObject();
    w.Key("crash_time");
    w.Double(avail_.crash_time);
    w.Key("time_to_first_txn");
    w.Double(avail_.time_to_first_txn);
    w.Key("time_to_full_recovery");
    w.Double(avail_.time_to_full_recovery);
    w.Key("drained");
    w.Bool(avail_.drained);
    w.Key("pending_segments");
    w.Uint(pending_recovery_segments());
    w.Key("stall_recovery_wait_seconds");
    w.Double(stall_recovery_wait_seconds_);
    w.Key("loads");
    w.BeginObject();
    w.Key("touch");
    w.Uint(instant_ != nullptr ? instant_->touch_loads() : avail_.touch_loads);
    w.Key("background");
    w.Uint(instant_ != nullptr ? instant_->background_loads()
                               : avail_.background_loads);
    w.Key("force");
    w.Uint(instant_ != nullptr ? instant_->force_loads() : avail_.force_loads);
    w.EndObject();
    w.EndObject();
  }
  // Provenance journal state (DESIGN.md §18). Deliberately the LAST member
  // and excluded from every determinism comparison (bench_diff strips it,
  // like "run" and "shards"): lineage stream sets legitimately vary with
  // the shard count, and journal byte counts vary with event volume.
  w.Key("audit");
  if (audit_ != nullptr) {
    const AuditJournal::Counters& c = audit_->counters();
    w.BeginObject();
    w.Key("journal");
    w.BeginObject();
    w.Key("path");
    w.String(audit_->path());
    w.Key("entries");
    w.Uint(c.entries);
    w.Key("bytes");
    w.Uint(c.bytes);
    w.Key("syncs");
    w.Uint(c.syncs);
    w.Key("append_errors");
    w.Uint(c.append_errors);
    w.Key("sync_errors");
    w.Uint(c.sync_errors);
    w.Key("next_seq");
    w.Uint(audit_->next_seq());
    w.EndObject();
    w.Key("lineage");
    if (last_lineage_.empty()) {
      w.Null();
    } else {
      WriteLineageJson(last_lineage_, &w);
    }
    w.EndObject();
  } else {
    w.Null();
  }
  w.EndObject();
  return w.TakeString();
}

}  // namespace mmdb
