#ifndef MMDB_TOOLS_INSPECT_H_
#define MMDB_TOOLS_INSPECT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "backup/backup_store.h"
#include "env/env.h"
#include "sim/cost_model.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/types.h"

namespace mmdb {

// Offline inspection of an engine's on-disk state, backing the
// `mmdb_log_dump` and `mmdb_backup_inspect` command-line tools (and usable
// programmatically, e.g. for monitoring). Everything here is read-only.

// Per-shard stream files of `log_path` (stream k > 0 lives at
// `log_path.k`, the LogManager::StreamPath layout), discovered by probing
// the filesystem. Always returns at least {log_path}; the classic
// single-stream layout yields exactly that.
std::vector<std::string> DiscoverLogStreams(Env* env,
                                            const std::string& log_path);

// What a pass over a log file (all of its streams, LSN-merged) found.
struct LogSummary {
  uint64_t base_offset = 0;
  uint64_t valid_bytes = 0;  // logical end of the well-formed prefix
  bool torn_tail = false;
  // Stream files merged (1 = classic single log). A torn gang means a
  // group-commit batch was torn across streams at crash time: frames past
  // the global LSN gap are dropped even where CRC-clean in their own
  // stream; `gang_lsn` is the first LSN that never became globally
  // durable and `stream_dropped_frames` counts each stream's casualties.
  uint32_t streams = 1;
  bool torn_gang = false;
  Lsn gang_lsn = kInvalidLsn;
  std::vector<uint64_t> stream_dropped_frames;

  uint64_t records = 0;
  uint64_t updates = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t begin_markers = 0;
  uint64_t end_markers = 0;
  uint64_t distinct_txns = 0;

  // Checkpoints seen, oldest first; `complete` means the end marker was
  // found too.
  struct CheckpointSpan {
    CheckpointId id;
    uint64_t begin_offset;
    bool complete;
  };
  std::vector<CheckpointSpan> checkpoints;

  std::string ToString() const;
};

// Scans the whole log (from its base offset) and summarizes it.
StatusOr<LogSummary> SummarizeLog(Env* env, const std::string& log_path);

// Prints one line per record to `out`, starting at `from_offset`
// (0 = the file's base). Returns the number of records printed.
StatusOr<uint64_t> DumpLog(Env* env, const std::string& log_path,
                           uint64_t from_offset, std::FILE* out);

// JSON form of DumpLog, appended to `*out` as a single document:
//   {"base_offset":N,"valid_bytes":N,"torn_tail":b,
//    "streams":N,"stream_valid_bytes":[N,...],
//    "torn_gang":b,"gang_lsn":N,"stream_dropped_frames":[N,...],
//    "records":[{"offset":N,"stream":N,"record":{...}},...]}
// The per-record objects come from LogRecord::AppendJsonTo — the same
// formatter the trace layer's log events reference — so offline dumps and
// live traces name fields identically. Returns the record count.
[[nodiscard]] StatusOr<uint64_t> DumpLogJson(Env* env,
                                             const std::string& log_path,
                                             uint64_t from_offset,
                                             std::string* out);

// Verification result for one ping-pong copy.
struct CopySummary {
  bool present = false;
  uint64_t valid_segments = 0;
  uint64_t corrupt_segments = 0;
  std::vector<SegmentId> corrupt_examples;  // first few failing segments
};

// What an inspection of a backup directory found.
struct BackupSummary {
  DatabaseParams geometry;
  bool has_meta = false;
  CheckpointMeta meta;
  CopySummary copies[2];

  std::string ToString() const;
};

// Reads the directory's geometry from the copy headers, verifies every
// segment checksum in both copies, and decodes the checkpoint metadata.
// Corrupt segments are counted, not fatal (a torn in-flight checkpoint
// legitimately leaves some).
StatusOr<BackupSummary> InspectBackup(Env* env, const std::string& dir);

}  // namespace mmdb

#endif  // MMDB_TOOLS_INSPECT_H_
