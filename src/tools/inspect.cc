#include "tools/inspect.h"

#include <algorithm>
#include <unordered_set>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/json.h"
#include "util/string_util.h"
#include "wal/log_reader.h"

namespace mmdb {

std::string LogSummary::ToString() const {
  std::string out = StringPrintf(
      "log: base=%llu valid_bytes=%llu%s\n"
      "records: %llu total | %llu updates, %llu commits, %llu aborts, "
      "%llu begin-ckpt, %llu end-ckpt | %llu distinct txns\n",
      static_cast<unsigned long long>(base_offset),
      static_cast<unsigned long long>(valid_bytes),
      torn_tail ? " (torn tail)" : "",
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(updates),
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(aborts),
      static_cast<unsigned long long>(begin_markers),
      static_cast<unsigned long long>(end_markers),
      static_cast<unsigned long long>(distinct_txns));
  for (const CheckpointSpan& c : checkpoints) {
    out += StringPrintf("checkpoint %llu: begin@%llu %s\n",
                        static_cast<unsigned long long>(c.id),
                        static_cast<unsigned long long>(c.begin_offset),
                        c.complete ? "complete" : "IN PROGRESS at crash");
  }
  return out;
}

StatusOr<LogSummary> SummarizeLog(Env* env, const std::string& log_path) {
  MMDB_ASSIGN_OR_RETURN(LogReader reader, LogReader::Open(env, log_path));
  LogSummary summary;
  summary.base_offset = reader.base_offset();
  summary.valid_bytes = reader.valid_bytes();
  summary.torn_tail = reader.truncated_tail();

  std::unordered_set<TxnId> txns;
  MMDB_RETURN_IF_ERROR(reader.ScanForward(
      reader.base_offset(), [&](const LogRecord& r, uint64_t offset) {
        ++summary.records;
        switch (r.type) {
          case LogRecordType::kUpdate:
          case LogRecordType::kDelta:
            ++summary.updates;
            txns.insert(r.txn_id);
            break;
          case LogRecordType::kCommit:
            ++summary.commits;
            txns.insert(r.txn_id);
            break;
          case LogRecordType::kAbort:
            ++summary.aborts;
            txns.insert(r.txn_id);
            break;
          case LogRecordType::kBeginCheckpoint:
            ++summary.begin_markers;
            summary.checkpoints.push_back(
                LogSummary::CheckpointSpan{r.checkpoint_id, offset, false});
            break;
          case LogRecordType::kEndCheckpoint:
            ++summary.end_markers;
            for (auto& span : summary.checkpoints) {
              if (span.id == r.checkpoint_id) span.complete = true;
            }
            break;
        }
        return true;
      }));
  summary.distinct_txns = txns.size();
  return summary;
}

StatusOr<uint64_t> DumpLog(Env* env, const std::string& log_path,
                           uint64_t from_offset, std::FILE* out) {
  MMDB_ASSIGN_OR_RETURN(LogReader reader, LogReader::Open(env, log_path));
  uint64_t start = std::max(from_offset, reader.base_offset());
  uint64_t printed = 0;
  MMDB_RETURN_IF_ERROR(reader.ScanForward(
      start, [&](const LogRecord& r, uint64_t offset) {
        std::fprintf(out, "%10llu  %s\n",
                     static_cast<unsigned long long>(offset),
                     r.DebugString().c_str());
        ++printed;
        return true;
      }));
  if (reader.truncated_tail()) {
    std::fprintf(out, "%10llu  <torn tail>\n",
                 static_cast<unsigned long long>(reader.valid_bytes()));
  }
  return printed;
}

StatusOr<uint64_t> DumpLogJson(Env* env, const std::string& log_path,
                               uint64_t from_offset, std::string* out) {
  MMDB_ASSIGN_OR_RETURN(LogReader reader, LogReader::Open(env, log_path));
  JsonWriter w;
  w.BeginObject();
  w.Key("base_offset");
  w.Uint(reader.base_offset());
  w.Key("valid_bytes");
  w.Uint(reader.valid_bytes());
  w.Key("torn_tail");
  w.Bool(reader.truncated_tail());
  w.Key("records");
  w.BeginArray();
  uint64_t emitted = 0;
  uint64_t start = std::max(from_offset, reader.base_offset());
  MMDB_RETURN_IF_ERROR(reader.ScanForward(
      start, [&](const LogRecord& r, uint64_t offset) {
        w.BeginObject();
        w.Key("offset");
        w.Uint(offset);
        w.Key("record");
        r.AppendJsonTo(&w);
        w.EndObject();
        ++emitted;
        return true;
      }));
  w.EndArray();
  w.EndObject();
  out->append(w.TakeString());
  return emitted;
}

std::string BackupSummary::ToString() const {
  std::string out = StringPrintf(
      "geometry: %llu words, %u-word segments, %u-word records "
      "(%llu segments)\n",
      static_cast<unsigned long long>(geometry.db_words),
      geometry.segment_words, geometry.record_words,
      static_cast<unsigned long long>(geometry.num_segments()));
  if (has_meta) {
    out += StringPrintf(
        "last complete checkpoint: id=%llu copy=%u begin-marker@%llu "
        "(lsn %llu)\n",
        static_cast<unsigned long long>(meta.checkpoint_id), meta.copy,
        static_cast<unsigned long long>(meta.log_offset),
        static_cast<unsigned long long>(meta.begin_lsn));
  } else {
    out += "no completed checkpoint recorded\n";
  }
  for (uint32_t c = 0; c < 2; ++c) {
    if (!copies[c].present) {
      out += StringPrintf("copy %u: missing\n", c);
      continue;
    }
    out += StringPrintf("copy %u: %llu segments ok, %llu corrupt", c,
                        static_cast<unsigned long long>(
                            copies[c].valid_segments),
                        static_cast<unsigned long long>(
                            copies[c].corrupt_segments));
    if (!copies[c].corrupt_examples.empty()) {
      out += " (e.g.";
      for (SegmentId s : copies[c].corrupt_examples) {
        out += StringPrintf(" %llu", static_cast<unsigned long long>(s));
      }
      out += ")";
    }
    out += "\n";
  }
  return out;
}

StatusOr<BackupSummary> InspectBackup(Env* env, const std::string& dir) {
  BackupSummary summary;
  const std::string copy0 = dir + "/backup_0.db";
  if (!env->FileExists(copy0)) {
    return NotFoundError("no backup copies under '" + dir + "'");
  }
  MMDB_ASSIGN_OR_RETURN(summary.geometry,
                        BackupStore::ReadGeometry(env, copy0));

  // Metadata (optional: absent before the first checkpoint completes).
  const std::string meta_path = dir + "/CHECKPOINT";
  if (env->FileExists(meta_path)) {
    std::string contents;
    MMDB_RETURN_IF_ERROR(env->ReadFileToString(meta_path, &contents));
    MMDB_RETURN_IF_ERROR(CheckpointMeta::DecodeFrom(contents, &summary.meta));
    summary.has_meta = true;
  }

  for (uint32_t c = 0; c < 2; ++c) {
    const std::string path = dir + "/backup_" + std::to_string(c) + ".db";
    if (!env->FileExists(path)) continue;
    summary.copies[c].present = true;
    MMDB_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                          env->NewRandomAccessFile(path));
    std::string image, crc_bytes;
    for (SegmentId s = 0; s < summary.geometry.num_segments(); ++s) {
      MMDB_RETURN_IF_ERROR(
          file->Read(BackupStore::SlotOffsetFor(summary.geometry, s),
                     summary.geometry.segment_bytes(), &image));
      MMDB_RETURN_IF_ERROR(
          file->Read(BackupStore::CrcOffsetFor(summary.geometry, s), 4,
                     &crc_bytes));
      bool ok = image.size() == summary.geometry.segment_bytes() &&
                crc_bytes.size() == 4 &&
                crc32c::Unmask(DecodeFixed32(crc_bytes.data())) ==
                    crc32c::Value(image);
      if (ok) {
        ++summary.copies[c].valid_segments;
      } else {
        ++summary.copies[c].corrupt_segments;
        if (summary.copies[c].corrupt_examples.size() < 5) {
          summary.copies[c].corrupt_examples.push_back(s);
        }
      }
    }
  }
  return summary;
}

}  // namespace mmdb
