#include "tools/inspect.h"

#include <algorithm>
#include <unordered_set>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/json.h"
#include "util/string_util.h"
#include "wal/log_reader.h"

namespace mmdb {

std::vector<std::string> DiscoverLogStreams(Env* env,
                                            const std::string& log_path) {
  std::vector<std::string> paths = {log_path};
  for (uint32_t k = 1;; ++k) {
    std::string next = log_path + "." + std::to_string(k);
    if (!env->FileExists(next)) break;
    paths.push_back(std::move(next));
  }
  return paths;
}

std::string LogSummary::ToString() const {
  std::string out = StringPrintf(
      "log: base=%llu valid_bytes=%llu%s\n"
      "records: %llu total | %llu updates, %llu commits, %llu aborts, "
      "%llu begin-ckpt, %llu end-ckpt | %llu distinct txns\n",
      static_cast<unsigned long long>(base_offset),
      static_cast<unsigned long long>(valid_bytes),
      torn_tail ? " (torn tail)" : "",
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(updates),
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(aborts),
      static_cast<unsigned long long>(begin_markers),
      static_cast<unsigned long long>(end_markers),
      static_cast<unsigned long long>(distinct_txns));
  // Stream lines only appear for sharded logs so the classic single-stream
  // output stays byte-identical.
  if (streams > 1) {
    out += StringPrintf("streams: %u merged by LSN", streams);
    if (torn_gang) {
      out += StringPrintf(" | TORN GANG at lsn=%llu (dropped:",
                          static_cast<unsigned long long>(gang_lsn));
      for (size_t k = 0; k < stream_dropped_frames.size(); ++k) {
        out += StringPrintf(" s%zu=%llu", k,
                            static_cast<unsigned long long>(
                                stream_dropped_frames[k]));
      }
      out += ")";
    }
    out += "\n";
  }
  for (const CheckpointSpan& c : checkpoints) {
    out += StringPrintf("checkpoint %llu: begin@%llu %s\n",
                        static_cast<unsigned long long>(c.id),
                        static_cast<unsigned long long>(c.begin_offset),
                        c.complete ? "complete" : "IN PROGRESS at crash");
  }
  return out;
}

StatusOr<LogSummary> SummarizeLog(Env* env, const std::string& log_path) {
  MMDB_ASSIGN_OR_RETURN(
      LogReader reader,
      LogReader::OpenStreams(env, DiscoverLogStreams(env, log_path), nullptr));
  LogSummary summary;
  summary.base_offset = reader.base_offset();
  summary.valid_bytes = reader.valid_bytes();
  summary.torn_tail = reader.truncated_tail();
  summary.streams = reader.num_streams();
  summary.torn_gang = reader.torn_gang();
  summary.gang_lsn = reader.torn_gang_lsn();
  summary.stream_dropped_frames = reader.stream_dropped_frames();

  std::unordered_set<TxnId> txns;
  MMDB_RETURN_IF_ERROR(reader.ScanForward(
      reader.base_offset(), [&](const LogRecord& r, uint64_t offset) {
        ++summary.records;
        switch (r.type) {
          case LogRecordType::kUpdate:
          case LogRecordType::kDelta:
            ++summary.updates;
            txns.insert(r.txn_id);
            break;
          case LogRecordType::kCommit:
            ++summary.commits;
            txns.insert(r.txn_id);
            break;
          case LogRecordType::kAbort:
            ++summary.aborts;
            txns.insert(r.txn_id);
            break;
          case LogRecordType::kBeginCheckpoint:
            ++summary.begin_markers;
            summary.checkpoints.push_back(
                LogSummary::CheckpointSpan{r.checkpoint_id, offset, false});
            break;
          case LogRecordType::kEndCheckpoint:
            ++summary.end_markers;
            for (auto& span : summary.checkpoints) {
              if (span.id == r.checkpoint_id) span.complete = true;
            }
            break;
        }
        return true;
      }));
  summary.distinct_txns = txns.size();
  return summary;
}

StatusOr<uint64_t> DumpLog(Env* env, const std::string& log_path,
                           uint64_t from_offset, std::FILE* out) {
  MMDB_ASSIGN_OR_RETURN(
      LogReader reader,
      LogReader::OpenStreams(env, DiscoverLogStreams(env, log_path), nullptr));
  uint64_t start = std::max(from_offset, reader.base_offset());
  size_t begin = 0;
  if (start > reader.base_offset()) {
    MMDB_ASSIGN_OR_RETURN(begin, reader.FrameIndexAt(start));
  }
  // For a sharded log each frame gains an owning-stream column, and a
  // marker line flags every stream hand-off in merged LSN order. Epochs
  // are not persisted in the frames, but a gang flush drains whole epochs
  // per stream, so a hand-off can only fall on a gang-epoch boundary —
  // the markers are a faithful lower bound, not every boundary.
  const bool sharded = reader.num_streams() > 1;
  uint32_t prev_stream = 0;
  uint64_t printed = 0;
  for (size_t i = begin; i < reader.num_frames(); ++i) {
    MMDB_ASSIGN_OR_RETURN(LogRecord r, reader.RecordAtIndex(i));
    const uint32_t stream = reader.FrameStream(i);
    if (sharded && (printed == 0 || stream != prev_stream)) {
      std::fprintf(out, "%10s  -- gang-epoch boundary: stream s%u --\n", "",
                   stream);
    }
    prev_stream = stream;
    if (sharded) {
      std::fprintf(out, "%10llu  s%u  %s\n",
                   static_cast<unsigned long long>(reader.FrameOffset(i)),
                   stream, r.DebugString().c_str());
    } else {
      std::fprintf(out, "%10llu  %s\n",
                   static_cast<unsigned long long>(reader.FrameOffset(i)),
                   r.DebugString().c_str());
    }
    ++printed;
  }
  if (reader.truncated_tail()) {
    std::fprintf(out, "%10llu  <torn tail>\n",
                 static_cast<unsigned long long>(reader.valid_bytes()));
  }
  if (reader.torn_gang()) {
    std::fprintf(out, "%10llu  <torn gang: lsn %llu never globally durable;"
                 " dropped",
                 static_cast<unsigned long long>(reader.valid_bytes()),
                 static_cast<unsigned long long>(reader.torn_gang_lsn()));
    const std::vector<uint64_t>& dropped = reader.stream_dropped_frames();
    for (size_t k = 0; k < dropped.size(); ++k) {
      std::fprintf(out, " s%zu=%llu", k,
                   static_cast<unsigned long long>(dropped[k]));
    }
    std::fprintf(out, ">\n");
  }
  return printed;
}

StatusOr<uint64_t> DumpLogJson(Env* env, const std::string& log_path,
                               uint64_t from_offset, std::string* out) {
  std::vector<uint64_t> stream_valid_bytes;
  MMDB_ASSIGN_OR_RETURN(
      LogReader reader,
      LogReader::OpenStreams(env, DiscoverLogStreams(env, log_path),
                             &stream_valid_bytes));
  JsonWriter w;
  w.BeginObject();
  w.Key("base_offset");
  w.Uint(reader.base_offset());
  w.Key("valid_bytes");
  w.Uint(reader.valid_bytes());
  w.Key("torn_tail");
  w.Bool(reader.truncated_tail());
  w.Key("streams");
  w.Uint(reader.num_streams());
  w.Key("stream_valid_bytes");
  w.BeginArray();
  for (uint64_t bytes : stream_valid_bytes) w.Uint(bytes);
  w.EndArray();
  w.Key("torn_gang");
  w.Bool(reader.torn_gang());
  w.Key("gang_lsn");
  w.Uint(reader.torn_gang_lsn());
  w.Key("stream_dropped_frames");
  w.BeginArray();
  for (uint64_t dropped : reader.stream_dropped_frames()) w.Uint(dropped);
  w.EndArray();
  w.Key("records");
  w.BeginArray();
  uint64_t emitted = 0;
  uint64_t start = std::max(from_offset, reader.base_offset());
  size_t begin = 0;
  if (start > reader.base_offset()) {
    MMDB_ASSIGN_OR_RETURN(begin, reader.FrameIndexAt(start));
  }
  for (size_t i = begin; i < reader.num_frames(); ++i) {
    MMDB_ASSIGN_OR_RETURN(LogRecord r, reader.RecordAtIndex(i));
    w.BeginObject();
    w.Key("offset");
    w.Uint(reader.FrameOffset(i));
    w.Key("stream");
    w.Uint(reader.FrameStream(i));
    w.Key("record");
    r.AppendJsonTo(&w);
    w.EndObject();
    ++emitted;
  }
  w.EndArray();
  w.EndObject();
  out->append(w.TakeString());
  return emitted;
}

std::string BackupSummary::ToString() const {
  std::string out = StringPrintf(
      "geometry: %llu words, %u-word segments, %u-word records "
      "(%llu segments)\n",
      static_cast<unsigned long long>(geometry.db_words),
      geometry.segment_words, geometry.record_words,
      static_cast<unsigned long long>(geometry.num_segments()));
  if (has_meta) {
    out += StringPrintf(
        "last complete checkpoint: id=%llu copy=%u begin-marker@%llu "
        "(lsn %llu)\n",
        static_cast<unsigned long long>(meta.checkpoint_id), meta.copy,
        static_cast<unsigned long long>(meta.log_offset),
        static_cast<unsigned long long>(meta.begin_lsn));
  } else {
    out += "no completed checkpoint recorded\n";
  }
  for (uint32_t c = 0; c < 2; ++c) {
    if (!copies[c].present) {
      out += StringPrintf("copy %u: missing\n", c);
      continue;
    }
    out += StringPrintf("copy %u: %llu segments ok, %llu corrupt", c,
                        static_cast<unsigned long long>(
                            copies[c].valid_segments),
                        static_cast<unsigned long long>(
                            copies[c].corrupt_segments));
    if (!copies[c].corrupt_examples.empty()) {
      out += " (e.g.";
      for (SegmentId s : copies[c].corrupt_examples) {
        out += StringPrintf(" %llu", static_cast<unsigned long long>(s));
      }
      out += ")";
    }
    out += "\n";
  }
  return out;
}

StatusOr<BackupSummary> InspectBackup(Env* env, const std::string& dir) {
  BackupSummary summary;
  const std::string copy0 = dir + "/backup_0.db";
  if (!env->FileExists(copy0)) {
    return NotFoundError("no backup copies under '" + dir + "'");
  }
  MMDB_ASSIGN_OR_RETURN(summary.geometry,
                        BackupStore::ReadGeometry(env, copy0));

  // Metadata (optional: absent before the first checkpoint completes).
  const std::string meta_path = dir + "/CHECKPOINT";
  if (env->FileExists(meta_path)) {
    std::string contents;
    MMDB_RETURN_IF_ERROR(env->ReadFileToString(meta_path, &contents));
    MMDB_RETURN_IF_ERROR(CheckpointMeta::DecodeFrom(contents, &summary.meta));
    summary.has_meta = true;
  }

  for (uint32_t c = 0; c < 2; ++c) {
    const std::string path = dir + "/backup_" + std::to_string(c) + ".db";
    if (!env->FileExists(path)) continue;
    summary.copies[c].present = true;
    MMDB_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                          env->NewRandomAccessFile(path));
    std::string image, crc_bytes;
    for (SegmentId s = 0; s < summary.geometry.num_segments(); ++s) {
      MMDB_RETURN_IF_ERROR(
          file->Read(BackupStore::SlotOffsetFor(summary.geometry, s),
                     summary.geometry.segment_bytes(), &image));
      MMDB_RETURN_IF_ERROR(
          file->Read(BackupStore::CrcOffsetFor(summary.geometry, s), 4,
                     &crc_bytes));
      bool ok = image.size() == summary.geometry.segment_bytes() &&
                crc_bytes.size() == 4 &&
                crc32c::Unmask(DecodeFixed32(crc_bytes.data())) ==
                    crc32c::Value(image);
      if (ok) {
        ++summary.copies[c].valid_segments;
      } else {
        ++summary.copies[c].corrupt_segments;
        if (summary.copies[c].corrupt_examples.size() < 5) {
          summary.copies[c].corrupt_examples.push_back(s);
        }
      }
    }
  }
  return summary;
}

}  // namespace mmdb
