#include "env/fault_injection_env.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

namespace mmdb {
namespace {

enum class OpClass : uint8_t { kWrite, kSync, kRead };

bool KindMatchesClass(FaultKind kind, OpClass cls) {
  switch (kind) {
    case FaultKind::kWriteError:
    case FaultKind::kShortWrite:
    case FaultKind::kTornWrite:
      return cls == OpClass::kWrite;
    case FaultKind::kSyncError:
      return cls == OpClass::kSync;
    case FaultKind::kReadError:
    case FaultKind::kCorruptRead:
      return cls == OpClass::kRead;
  }
  return false;
}

Status Injected(const std::string& path, const char* what) {
  return IoError(path + ": injected " + what);
}

}  // namespace

struct FaultInjectionEnv::State {
  struct ActiveRule {
    FaultRule rule;
    uint64_t remaining;  // firings left; 0 = unlimited (rule.times == 0)
    bool unlimited;
  };

  // Guards everything below: parallel recovery issues reads from pool
  // workers, so op numbering, rule budgets, and listener firing must be
  // serialized (the listener itself runs under the lock — keep them
  // cheap). Serial callers see the exact pre-lock behavior.
  std::mutex mu;
  uint64_t op_count = 0;
  uint64_t faults_fired = 0;
  std::vector<ActiveRule> rules;
  std::vector<std::pair<const void*, FaultInjectionEnv::FaultListener>>
      listeners;

  // Numbers this operation and returns the fault to apply, if any.
  std::optional<FaultKind> NextOp(OpClass cls, const std::string& path) {
    std::lock_guard<std::mutex> lock(mu);
    uint64_t op = op_count++;
    for (ActiveRule& ar : rules) {
      if (op < ar.rule.after_ops) continue;
      if (!ar.unlimited && ar.remaining == 0) continue;
      if (!KindMatchesClass(ar.rule.kind, cls)) continue;
      if (path.find(ar.rule.path_substring) == std::string::npos) continue;
      if (!ar.unlimited) --ar.remaining;
      ++faults_fired;
      for (auto& [owner, listener] : listeners) listener(ar.rule.kind, path, op);
      return ar.rule.kind;
    }
    return std::nullopt;
  }
};

namespace {

using State = FaultInjectionEnv::State;

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, std::string path,
                    std::shared_ptr<State> state)
      : base_(std::move(base)),
        path_(std::move(path)),
        state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    auto fault = state_->NextOp(OpClass::kWrite, path_);
    if (!fault) return base_->Append(data);
    switch (*fault) {
      case FaultKind::kWriteError:
        return Injected(path_, "write error");
      case FaultKind::kShortWrite:
        MMDB_RETURN_IF_ERROR(base_->Append(data.substr(0, data.size() / 2)));
        return Injected(path_, "short write");
      case FaultKind::kTornWrite:
        return base_->Append(data.substr(0, data.size() / 2));
      default:
        return base_->Append(data);
    }
  }

  Status Sync() override {
    if (state_->NextOp(OpClass::kSync, path_)) {
      return Injected(path_, "sync error");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }
  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<WritableFile> base_;
  std::string path_;
  std::shared_ptr<State> state_;
};

// Flips one bit in the middle of a read result, modeling a device that
// returns plausible-but-wrong bytes rather than an error.
void CorruptReadResult(std::string* out) {
  if (!out->empty()) (*out)[out->size() / 2] ^= 0x01;
}

Status FaultedRead(State* state, const std::string& path,
                   const std::function<Status()>& read, std::string* out) {
  auto fault = state->NextOp(OpClass::kRead, path);
  if (fault && *fault == FaultKind::kReadError) {
    return Injected(path, "read error");
  }
  MMDB_RETURN_IF_ERROR(read());
  if (fault && *fault == FaultKind::kCorruptRead) CorruptReadResult(out);
  return Status::OK();
}

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        std::string path, std::shared_ptr<State> state)
      : base_(std::move(base)),
        path_(std::move(path)),
        state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    return FaultedRead(
        state_.get(), path_,
        [&] { return base_->Read(offset, n, out); }, out);
  }

  StatusOr<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::string path_;
  std::shared_ptr<State> state_;
};

class FaultRandomWriteFile : public RandomWriteFile {
 public:
  FaultRandomWriteFile(std::unique_ptr<RandomWriteFile> base, std::string path,
                       std::shared_ptr<State> state)
      : base_(std::move(base)),
        path_(std::move(path)),
        state_(std::move(state)) {}

  Status WriteAt(uint64_t offset, std::string_view data) override {
    auto fault = state_->NextOp(OpClass::kWrite, path_);
    if (!fault) return base_->WriteAt(offset, data);
    switch (*fault) {
      case FaultKind::kWriteError:
        return Injected(path_, "write error");
      case FaultKind::kShortWrite:
        MMDB_RETURN_IF_ERROR(
            base_->WriteAt(offset, data.substr(0, data.size() / 2)));
        return Injected(path_, "short write");
      case FaultKind::kTornWrite:
        return base_->WriteAt(offset, data.substr(0, data.size() / 2));
      default:
        return base_->WriteAt(offset, data);
    }
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    return FaultedRead(
        state_.get(), path_,
        [&] { return base_->Read(offset, n, out); }, out);
  }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

  Status Sync() override {
    if (state_->NextOp(OpClass::kSync, path_)) {
      return Injected(path_, "sync error");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomWriteFile> base_;
  std::string path_;
  std::shared_ptr<State> state_;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base), state_(std::make_shared<State>()) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::InjectFault(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->rules.push_back(
      State::ActiveRule{rule, rule.times, rule.times == 0});
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->rules.clear();
}

uint64_t FaultInjectionEnv::op_count() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->op_count;
}

uint64_t FaultInjectionEnv::faults_fired() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->faults_fired;
}

void FaultInjectionEnv::AddFaultListener(const void* owner,
                                         FaultListener listener) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->listeners.emplace_back(owner, std::move(listener));
}

void FaultInjectionEnv::RemoveFaultListeners(const void* owner) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto& ls = state_->listeners;
  ls.erase(std::remove_if(ls.begin(), ls.end(),
                          [owner](const auto& e) { return e.first == owner; }),
           ls.end());
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        base_->NewWritableFile(path));
  return {std::make_unique<FaultWritableFile>(std::move(file), path, state_)};
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewAppendableFile(
    const std::string& path) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        base_->NewAppendableFile(path));
  return {std::make_unique<FaultWritableFile>(std::move(file), path, state_)};
}

StatusOr<std::unique_ptr<RandomAccessFile>>
FaultInjectionEnv::NewRandomAccessFile(const std::string& path) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        base_->NewRandomAccessFile(path));
  return {
      std::make_unique<FaultRandomAccessFile>(std::move(file), path, state_)};
}

StatusOr<std::unique_ptr<RandomWriteFile>>
FaultInjectionEnv::NewRandomWriteFile(const std::string& path) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<RandomWriteFile> file,
                        base_->NewRandomWriteFile(path));
  return {
      std::make_unique<FaultRandomWriteFile>(std::move(file), path, state_)};
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusOr<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  return base_->CreateDirIfMissing(path);
}

Status FaultInjectionEnv::ListDir(const std::string& path,
                                  std::vector<std::string>* children) {
  return base_->ListDir(path, children);
}

}  // namespace mmdb
