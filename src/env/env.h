#ifndef MMDB_ENV_ENV_H_
#define MMDB_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace mmdb {

// Append-only file handle used for the log and for writing backups.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  // Durably persists appended data (fsync for PosixEnv).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  // Bytes appended so far.
  virtual uint64_t Size() const = 0;
};

// Positional-read file handle used for recovery and backup reads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // Reads up to n bytes starting at `offset` into *out (replacing its
  // contents). Short reads at end-of-file are not an error.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual StatusOr<uint64_t> Size() const = 0;
};

// A file that supports in-place positional writes; used by the backup store,
// which overwrites segment slots of a preallocated database image.
class RandomWriteFile {
 public:
  virtual ~RandomWriteFile() = default;

  virtual Status WriteAt(uint64_t offset, std::string_view data) = 0;
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  // Grows the file to at least `size` bytes (zero-filled).
  virtual Status Truncate(uint64_t size) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

// Minimal filesystem abstraction. Two implementations ship with the library:
// Env::Posix() (real files) and NewMemEnv() (in-memory, for tests and for
// running thousands of simulated crash/recover cycles quickly).
//
// Thread-compatibility: the engine is single-threaded by design; Env
// implementations are not required to be thread-safe.
class Env {
 public:
  virtual ~Env() = default;

  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  // Opens for appending, preserving existing contents (creates if absent).
  virtual StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;
  virtual StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  virtual StatusOr<std::unique_ptr<RandomWriteFile>> NewRandomWriteFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  // Atomic within an Env instance.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* children) = 0;

  // Convenience helpers implemented on top of the primitives above.
  Status WriteStringToFile(const std::string& path, std::string_view data,
                           bool sync);
  Status ReadFileToString(const std::string& path, std::string* out);

  // Process-wide POSIX environment (never deleted).
  static Env* Posix();
};

// Returns a fresh, empty in-memory filesystem. The caller owns it and must
// keep it alive for as long as any file handle opened from it.
std::unique_ptr<Env> NewMemEnv();

}  // namespace mmdb

#endif  // MMDB_ENV_ENV_H_
