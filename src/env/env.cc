#include "env/env.h"

namespace mmdb {

Status Env::WriteStringToFile(const std::string& path, std::string_view data,
                              bool sync) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        NewWritableFile(path));
  MMDB_RETURN_IF_ERROR(file->Append(data));
  if (sync) MMDB_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        NewRandomAccessFile(path));
  MMDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  return file->Read(0, size, out);
}

}  // namespace mmdb
