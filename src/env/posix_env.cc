#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "env/env.h"
#include "util/string_util.h"

namespace mmdb {
namespace {

Status PosixError(const std::string& context, int err) {
  return IoError(context + ": " + std::strerror(err));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    size_ += data.size();
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return PosixError(path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError(path_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out->data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      if (r == 0) break;  // EOF: short read is fine.
      got += static_cast<size_t>(r);
    }
    out->resize(got);
    return Status::OK();
  }

  StatusOr<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return PosixError(path_, errno);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixRandomWriteFile : public RandomWriteFile {
 public:
  PosixRandomWriteFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomWriteFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status WriteAt(uint64_t offset, std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    uint64_t pos = offset;
    while (left > 0) {
      ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(pos));
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      p += n;
      pos += static_cast<uint64_t>(n);
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out->data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      if (r == 0) break;
      got += static_cast<size_t>(r);
    }
    out->resize(got);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return PosixError(path_, errno);
    if (static_cast<uint64_t>(st.st_size) >= size) return Status::OK();
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return PosixError(path_, errno);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return PosixError(path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError(path_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return PosixError(path, errno);
    return {std::make_unique<PosixWritableFile>(path, fd, 0)};
  }

  StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_CREAT | O_APPEND | O_WRONLY, 0644);
    if (fd < 0) return PosixError(path, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return PosixError(path, err);
    }
    return {std::make_unique<PosixWritableFile>(
        path, fd, static_cast<uint64_t>(st.st_size))};
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(path, errno);
    return {std::make_unique<PosixRandomAccessFile>(path, fd)};
  }

  StatusOr<std::unique_ptr<RandomWriteFile>> NewRandomWriteFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd < 0) return PosixError(path, errno);
    return {std::make_unique<PosixRandomWriteFile>(path, fd)};
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return PosixError(path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return PosixError(path, errno);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError(from, errno);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(path, errno);
    }
    return Status::OK();
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* children) override {
    children->clear();
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return PosixError(path, errno);
    struct dirent* entry;
    while ((entry = ::readdir(dir)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") children->push_back(std::move(name));
    }
    ::closedir(dir);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();  // Never deleted; trivially "leaked".
  return env;
}

}  // namespace mmdb
