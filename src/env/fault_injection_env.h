#ifndef MMDB_ENV_FAULT_INJECTION_ENV_H_
#define MMDB_ENV_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "env/env.h"

namespace mmdb {

// The partial-failure shapes a storage stack must tolerate, beyond the
// whole-process crash that Engine::Crash already models.
enum class FaultKind : uint8_t {
  kWriteError,   // Append/WriteAt fails; no bytes reach the file
  kShortWrite,   // a prefix of the data lands, then the op reports IoError
  kTornWrite,    // a prefix lands but the op reports success (silent tear;
                 // only a checksum layer can catch it)
  kSyncError,    // Sync fails (the classic lost fsync)
  kReadError,    // Read fails
  kCorruptRead,  // Read succeeds with one bit flipped in the middle byte
};

inline std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWriteError:
      return "write_error";
    case FaultKind::kShortWrite:
      return "short_write";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kSyncError:
      return "sync_error";
    case FaultKind::kReadError:
      return "read_error";
    case FaultKind::kCorruptRead:
      return "corrupt_read";
  }
  return "unknown";
}

// One scheduled fault. Matching is deterministic: every data-path
// operation (Append, WriteAt, Sync, Read) on any file of the wrapped Env
// is numbered 0, 1, 2, ...; the rule fires on the first operation whose
// number is >= `after_ops`, whose class matches `kind` (write kinds match
// writes, kSyncError matches syncs, read kinds match reads), and whose
// file path contains `path_substring`. It then fires on every further
// matching op until `times` firings are spent.
struct FaultRule {
  FaultKind kind = FaultKind::kWriteError;
  std::string path_substring;  // empty matches every file
  uint64_t after_ops = 0;      // operation number at which the rule arms
  uint64_t times = 1;          // firings before the rule disarms (0 = never)
};

// Env decorator that injects the faults scheduled via InjectFault into an
// otherwise-unmodified delegate. Deterministic by construction (no clocks,
// no randomness), so a failing fault-sweep point can be replayed exactly.
// Metadata operations (open, rename, delete, list) always succeed if the
// delegate succeeds; the write/sync/read kinds cover every failure this
// engine's recovery protocol must survive, since all multi-file updates
// funnel through temp-file-plus-rename.
//
// File handles opened through this Env share its fault state and remain
// valid for the Env's lifetime. Like the delegate Envs, not thread-safe.
class FaultInjectionEnv : public Env {
 public:
  // `base` must outlive this Env.
  explicit FaultInjectionEnv(Env* base);
  ~FaultInjectionEnv() override;

  // Schedules a fault. Multiple rules may be active; the first match wins
  // for any given operation.
  void InjectFault(const FaultRule& rule);
  // Disarms all rules (already-applied damage stays, as on real hardware).
  void ClearFaults();

  // Data-path operations seen so far (fired or not).
  uint64_t op_count() const;
  // Rule firings so far.
  uint64_t faults_fired() const;

  // Observer called on every rule firing with the fault kind, the faulted
  // file's path, and the data-path operation number. Keyed by `owner` so a
  // subscriber can unregister without knowing about other subscribers
  // (e.g. an Engine tracing faults removes only its own listener when it
  // is destroyed). Listeners must not call back into this Env.
  using FaultListener =
      std::function<void(FaultKind, const std::string& path, uint64_t op)>;
  void AddFaultListener(const void* owner, FaultListener listener);
  void RemoveFaultListeners(const void* owner);

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomWriteFile>> NewRandomWriteFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* children) override;

  // Opaque shared fault-schedule state (public so the file wrappers in the
  // implementation can name it; not part of the API).
  struct State;

 private:
  Env* base_;
  std::shared_ptr<State> state_;
};

}  // namespace mmdb

#endif  // MMDB_ENV_FAULT_INJECTION_ENV_H_
