#include <algorithm>
#include <map>
#include <memory>

#include "env/env.h"
#include "util/string_util.h"

namespace mmdb {
namespace {

// Shared byte buffer representing one in-memory file. Handles keep a
// shared_ptr so a file stays readable even if concurrently deleted from the
// directory map (mirroring POSIX unlink semantics).
struct MemFileData {
  std::string contents;
};

using FileMap = std::map<std::string, std::shared_ptr<MemFileData>>;

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Status Append(std::string_view chunk) override {
    data_->contents.append(chunk.data(), chunk.size());
    return Status::OK();
  }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  uint64_t Size() const override { return data_->contents.size(); }

 private:
  std::shared_ptr<MemFileData> data_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    const std::string& c = data_->contents;
    out->clear();
    if (offset >= c.size()) return Status::OK();
    size_t len = std::min(n, c.size() - static_cast<size_t>(offset));
    out->assign(c, static_cast<size_t>(offset), len);
    return Status::OK();
  }

  StatusOr<uint64_t> Size() const override {
    return static_cast<uint64_t>(data_->contents.size());
  }

 private:
  std::shared_ptr<MemFileData> data_;
};

class MemRandomWriteFile : public RandomWriteFile {
 public:
  explicit MemRandomWriteFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Status WriteAt(uint64_t offset, std::string_view chunk) override {
    std::string& c = data_->contents;
    uint64_t end = offset + chunk.size();
    if (c.size() < end) c.resize(end, '\0');
    std::copy(chunk.begin(), chunk.end(), c.begin() + offset);
    return Status::OK();
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    const std::string& c = data_->contents;
    out->clear();
    if (offset >= c.size()) return Status::OK();
    size_t len = std::min(n, c.size() - static_cast<size_t>(offset));
    out->assign(c, static_cast<size_t>(offset), len);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (data_->contents.size() < size) data_->contents.resize(size, '\0');
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<MemFileData> data_;
};

class MemEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    auto data = std::make_shared<MemFileData>();
    files_[path] = data;
    return {std::make_unique<MemWritableFile>(std::move(data))};
  }

  StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    auto it = files_.find(path);
    std::shared_ptr<MemFileData> data;
    if (it == files_.end()) {
      data = std::make_shared<MemFileData>();
      files_[path] = data;
    } else {
      data = it->second;
    }
    return {std::make_unique<MemWritableFile>(std::move(data))};
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    auto it = files_.find(path);
    if (it == files_.end()) return NotFoundError(path);
    return {std::make_unique<MemRandomAccessFile>(it->second)};
  }

  StatusOr<std::unique_ptr<RandomWriteFile>> NewRandomWriteFile(
      const std::string& path) override {
    auto it = files_.find(path);
    std::shared_ptr<MemFileData> data;
    if (it == files_.end()) {
      data = std::make_shared<MemFileData>();
      files_[path] = data;
    } else {
      data = it->second;
    }
    return {std::make_unique<MemRandomWriteFile>(std::move(data))};
  }

  bool FileExists(const std::string& path) override {
    return files_.count(path) > 0;
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    auto it = files_.find(path);
    if (it == files_.end()) return NotFoundError(path);
    return static_cast<uint64_t>(it->second->contents.size());
  }

  Status DeleteFile(const std::string& path) override {
    if (files_.erase(path) == 0) return NotFoundError(path);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    auto it = files_.find(from);
    if (it == files_.end()) return NotFoundError(from);
    files_[to] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string&) override {
    return Status::OK();  // Directories are implicit.
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* children) override {
    children->clear();
    std::string prefix = path;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    for (const auto& [name, data] : files_) {
      if (StartsWith(name, prefix)) {
        std::string rest = name.substr(prefix.size());
        // Only direct children.
        if (rest.find('/') == std::string::npos) children->push_back(rest);
      }
    }
    return Status::OK();
  }

 private:
  FileMap files_;
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace mmdb
